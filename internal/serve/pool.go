package serve

import (
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// ErrSaturated is returned by runPool.submit when the admission queue is
// full: the server is already running as many canonical simulator runs as
// it has leaders, with a full FIFO of runs waiting behind them. Callers
// translate it into 429 + Retry-After instead of queueing unboundedly.
var ErrSaturated = errors.New("run pool saturated")

// poolJob is one admitted canonical run waiting for (or on) a worker.
type poolJob struct {
	fn       func()
	enqueued time.Time
	done     chan struct{}
}

// runPool is the bounded executor for canonical simulator runs. Flight
// leaders submit the run; coalesced followers and cache hits never touch
// the pool, so saturation throttles only genuinely new work. Admission is
// a bounded FIFO: submit either enqueues (and blocks the leader until a
// worker has run the job) or fails immediately with ErrSaturated.
//
// A canonical run is a multi-phase CONGEST simulation — CPU-seconds to
// CPU-hours, not microseconds — so the pool admits runs like batch jobs:
// at most `workers` execute concurrently and at most `depth` wait behind
// them, and everything beyond that is explicit backpressure.
type runPool struct {
	jobs    chan *poolJob
	stop    chan struct{}
	stopped sync.Once
	workers int

	queued    atomic.Int64 // jobs admitted but not yet started
	running   atomic.Int64 // jobs currently executing
	submitted atomic.Int64 // admission attempts (admitted + rejected)
	completed atomic.Int64
	rejected  atomic.Int64
	waitNs    atomic.Int64 // total time admitted jobs spent queued
	maxWaitNs atomic.Int64
	runNs     atomic.Int64 // total worker execution time
}

// defaultPoolWorkers is the leader count used when Config.RunPool is 0:
// one canonical run per schedulable CPU, never more.
func defaultPoolWorkers() int {
	w := runtime.GOMAXPROCS(0)
	if n := runtime.NumCPU(); n < w {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// newRunPool starts `workers` leader goroutines over a FIFO of capacity
// `depth`. Zero or negative values select the defaults (workers:
// min(GOMAXPROCS, NumCPU); depth: 4x workers).
func newRunPool(workers, depth int) *runPool {
	if workers <= 0 {
		workers = defaultPoolWorkers()
	}
	if depth <= 0 {
		depth = 4 * workers
	}
	p := &runPool{
		jobs:    make(chan *poolJob, depth),
		stop:    make(chan struct{}),
		workers: workers,
	}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *runPool) worker() {
	for {
		select {
		case <-p.stop:
			return
		case j := <-p.jobs:
			p.queued.Add(-1)
			wait := time.Since(j.enqueued).Nanoseconds()
			p.waitNs.Add(wait)
			for {
				m := p.maxWaitNs.Load()
				if wait <= m || p.maxWaitNs.CompareAndSwap(m, wait) {
					break
				}
			}
			p.running.Add(1)
			t0 := time.Now()
			j.fn()
			p.runNs.Add(time.Since(t0).Nanoseconds())
			p.running.Add(-1)
			p.completed.Add(1)
			close(j.done)
		}
	}
}

// submit admits fn to the pool and blocks until a worker has executed it.
// When the FIFO is full it returns ErrSaturated without blocking.
func (p *runPool) submit(fn func()) error {
	p.submitted.Add(1)
	j := &poolJob{fn: fn, enqueued: time.Now(), done: make(chan struct{})}
	select {
	case p.jobs <- j:
		p.queued.Add(1)
	default:
		p.rejected.Add(1)
		return ErrSaturated
	}
	<-j.done
	return nil
}

// retryAfter estimates how long a rejected caller should back off: the
// current backlog (queued + running) times the observed mean run duration,
// divided across the workers, clamped to [1s, 60s]. With no completed runs
// yet it falls back to 1s.
func (p *runPool) retryAfter() time.Duration {
	meanRun := time.Second
	if done := p.completed.Load(); done > 0 {
		meanRun = time.Duration(p.runNs.Load() / done)
	}
	backlog := p.queued.Load() + p.running.Load()
	est := time.Duration(backlog) * meanRun / time.Duration(p.workers)
	if est < time.Second {
		est = time.Second
	}
	if est > time.Minute {
		est = time.Minute
	}
	return est
}

// close stops the workers. Only call after the HTTP listener has drained:
// jobs still queued at close time would block their submitters forever.
func (p *runPool) close() {
	p.stopped.Do(func() { close(p.stop) })
}

// poolStatz is the /statz JSON shape of the pool counters.
type poolStatz struct {
	Workers         int     `json:"workers"`
	QueueCapacity   int     `json:"queue_capacity"`
	Queued          int64   `json:"queued"`
	Running         int64   `json:"running"`
	Submitted       int64   `json:"submitted"`
	Completed       int64   `json:"completed"`
	Rejected        int64   `json:"rejected"`
	QueueWaitMs     float64 `json:"queue_wait_ms"`
	QueueWaitMeanMs float64 `json:"queue_wait_mean_ms"`
	QueueWaitMaxMs  float64 `json:"queue_wait_max_ms"`
	RunMs           float64 `json:"run_ms"`
}

func (p *runPool) statz() poolStatz {
	st := poolStatz{
		Workers:        p.workers,
		QueueCapacity:  cap(p.jobs),
		Queued:         p.queued.Load(),
		Running:        p.running.Load(),
		Submitted:      p.submitted.Load(),
		Completed:      p.completed.Load(),
		Rejected:       p.rejected.Load(),
		QueueWaitMs:    float64(p.waitNs.Load()) / 1e6,
		QueueWaitMaxMs: float64(p.maxWaitNs.Load()) / 1e6,
		RunMs:          float64(p.runNs.Load()) / 1e6,
	}
	// waitNs is recorded at dequeue, so the mean's denominator must count
	// dequeued jobs (still-running ones included), not just completed.
	if dequeued := st.Completed + st.Running; dequeued > 0 {
		st.QueueWaitMeanMs = st.QueueWaitMs / float64(dequeued)
	}
	return st
}

// String makes pool saturation errors self-describing in logs.
func (p *runPool) String() string {
	return fmt.Sprintf("runPool{workers=%d depth=%d queued=%d running=%d}",
		p.workers, cap(p.jobs), p.queued.Load(), p.running.Load())
}
