package serve

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestPoolBoundedConcurrency submits more jobs than workers and asserts
// the observed concurrency never exceeds the worker count.
func TestPoolBoundedConcurrency(t *testing.T) {
	p := newRunPool(2, 8)
	defer p.close()
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			err := p.submit(func() {
				c := cur.Add(1)
				for {
					m := max.Load()
					if c <= m || max.CompareAndSwap(m, c) {
						break
					}
				}
				time.Sleep(10 * time.Millisecond)
				cur.Add(-1)
			})
			if err != nil {
				t.Errorf("submit: %v", err)
			}
		}()
	}
	wg.Wait()
	if got := max.Load(); got > 2 {
		t.Fatalf("observed %d concurrent runs, pool has 2 workers", got)
	}
	st := p.statz()
	if st.Completed != 8 || st.Submitted != 8 || st.Rejected != 0 {
		t.Fatalf("pool stats after drain: %+v", st)
	}
	if st.Queued != 0 || st.Running != 0 {
		t.Fatalf("pool not drained: %+v", st)
	}
	if st.QueueWaitMs <= 0 {
		t.Fatalf("8 jobs through 2 workers recorded no queue wait: %+v", st)
	}
}

// TestPoolSaturation fills one worker and a depth-1 queue, then asserts
// the next submit is rejected immediately with ErrSaturated.
func TestPoolSaturation(t *testing.T) {
	p := newRunPool(1, 1)
	defer p.close()
	gate := make(chan struct{})
	done := make(chan error, 2)
	// First job occupies the worker.
	go func() { done <- p.submit(func() { <-gate }) }()
	waitFor(t, "worker busy", func() bool { return p.running.Load() == 1 })
	// Second job fills the queue.
	go func() { done <- p.submit(func() {}) }()
	waitFor(t, "queue full", func() bool { return p.queued.Load() == 1 })

	t0 := time.Now()
	if err := p.submit(func() {}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("submit into full pool: err = %v, want ErrSaturated", err)
	}
	if d := time.Since(t0); d > time.Second {
		t.Fatalf("saturated submit blocked for %v, want immediate rejection", d)
	}
	if got := p.statz().Rejected; got != 1 {
		t.Fatalf("rejected = %d, want 1", got)
	}
	if ra := p.retryAfter(); ra < time.Second || ra > time.Minute {
		t.Fatalf("retryAfter %v outside [1s, 60s]", ra)
	}

	close(gate)
	for i := 0; i < 2; i++ {
		if err := <-done; err != nil {
			t.Fatalf("admitted job %d failed: %v", i, err)
		}
	}
	if st := p.statz(); st.Completed != 2 {
		t.Fatalf("completed = %d, want 2", st.Completed)
	}
}

// TestPoolFIFO pins admission order: with a single worker, queued jobs run
// in the order they were admitted.
func TestPoolFIFO(t *testing.T) {
	p := newRunPool(1, 4)
	defer p.close()
	gate := make(chan struct{})
	var order []int
	var mu sync.Mutex
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		p.submit(func() { <-gate })
	}()
	waitFor(t, "worker busy", func() bool { return p.running.Load() == 1 })
	for i := 1; i <= 3; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			p.submit(func() {
				mu.Lock()
				order = append(order, i)
				mu.Unlock()
			})
		}()
		waitFor(t, "job queued", func() bool { return p.queued.Load() == int64(i) })
	}
	close(gate)
	wg.Wait()
	for i, got := range order {
		if got != i+1 {
			t.Fatalf("execution order %v, want [1 2 3]", order)
		}
	}
}

// TestPoolDefaults checks the zero-config sizing rules.
func TestPoolDefaults(t *testing.T) {
	p := newRunPool(0, 0)
	defer p.close()
	if p.workers != defaultPoolWorkers() {
		t.Fatalf("default workers = %d, want %d", p.workers, defaultPoolWorkers())
	}
	if cap(p.jobs) != 4*p.workers {
		t.Fatalf("default depth = %d, want %d", cap(p.jobs), 4*p.workers)
	}
	p.close() // idempotent
}
