package serve

import (
	"fmt"
	"sort"

	"expandergap/internal/apps/ldd"
	"expandergap/internal/apps/matching"
	"expandergap/internal/apps/maxis"
	"expandergap/internal/congest"
	"expandergap/internal/core"
	"expandergap/internal/routing"
)

// Families lists the served query families in canonical order.
func Families() []string { return []string{"matching", "mis", "clustering", "walkroute"} }

// Params is the JSON body of a POST /query/<family> request. Eps, Seed,
// Levels, Budget, and Deterministic select the canonical run and form the
// batch/cache key; Vertices and Sources only project the shared result onto
// a subset and deliberately stay out of the key, so requests that differ
// only in projection coalesce into one simulator run.
type Params struct {
	// Eps is the approximation parameter (default 0.25).
	Eps float64 `json:"eps,omitempty"`
	// Seed drives every PRNG of the run (default 1).
	Seed int64 `json:"seed,omitempty"`
	// Levels is the KPR chopping depth (clustering family only; default 3).
	Levels int `json:"levels,omitempty"`
	// Budget overrides the walk forward budget (walkroute family only;
	// 0 = the snapshot's default).
	Budget int `json:"budget,omitempty"`
	// Deterministic selects the tree-routing framework track.
	Deterministic bool `json:"deterministic,omitempty"`
	// Vertices restricts the response to these vertices (projection only).
	Vertices []int `json:"vertices,omitempty"`
	// Sources is the walkroute alias for Vertices.
	Sources []int `json:"sources,omitempty"`
}

func (p Params) withDefaults(family string) Params {
	if p.Eps == 0 {
		p.Eps = 0.25
	}
	if p.Seed == 0 {
		p.Seed = 1
	}
	if family == "clustering" && p.Levels == 0 {
		p.Levels = 3
	}
	return p
}

func (p Params) validate(family string, n int) error {
	if p.Eps <= 0 || p.Eps >= 1 {
		return fmt.Errorf("eps must be in (0,1), got %v", p.Eps)
	}
	if p.Levels < 0 || p.Budget < 0 {
		return fmt.Errorf("levels and budget must be non-negative")
	}
	for _, v := range p.selection() {
		if v < 0 || v >= n {
			return fmt.Errorf("vertex %d out of range [0,%d)", v, n)
		}
	}
	return nil
}

// selection returns the projection subset (Vertices with Sources as an
// alias), nil when the full result is wanted.
func (p Params) selection() []int {
	if len(p.Vertices) > 0 {
		return p.Vertices
	}
	return p.Sources
}

// key is the canonical batch/cache identity of the run these parameters
// select. Projection fields are excluded on purpose.
func (p Params) key(family string) string {
	return fmt.Sprintf("%s|eps=%g|seed=%d|levels=%d|budget=%d|det=%t",
		family, p.Eps, p.Seed, p.Levels, p.Budget, p.Deterministic)
}

// PhaseAccount is one named span of the run's observer tree.
type PhaseAccount struct {
	Name     string `json:"name"`
	Rounds   int    `json:"rounds"`
	Messages int64  `json:"messages"`
	Words    int64  `json:"words"`
	Bits     int64  `json:"bits"`
}

// Accounting is the structured per-query cost report, produced by the
// congest.Observer span machinery attached to the canonical run.
type Accounting struct {
	Rounds   int            `json:"rounds"`
	Messages int64          `json:"messages"`
	Words    int64          `json:"words"`
	Bits     int64          `json:"bits"`
	Phases   []PhaseAccount `json:"phases,omitempty"`
}

// ClusterStat is one decomposition cluster's slice of a result. Stat is
// family-specific: matched pairs inside the cluster (matching), independent-
// set members (mis), distinct refined labels (clustering), tokens absorbed
// by the cluster leader (walkroute).
type ClusterStat struct {
	ID     int `json:"id"`
	Leader int `json:"leader"`
	Size   int `json:"size"`
	Stat   int `json:"stat"`
}

// Result is the canonical, deterministic outcome of one (epoch, family,
// params) run — the unit the cache stores and batched requests share.
// Family-specific fields are omitempty unions.
type Result struct {
	Family   string `json:"family"`
	Epoch    int64  `json:"epoch"`
	N        int    `json:"n"`
	M        int    `json:"m"`
	Clusters int    `json:"clusters"`

	// matching
	Mate         []int `json:"mate,omitempty"`
	MatchingSize int   `json:"matching_size,omitempty"`
	Weight       int64 `json:"weight,omitempty"`

	// mis
	Set     []int `json:"set,omitempty"`
	SetSize int   `json:"set_size,omitempty"`

	// clustering
	Labels      []int   `json:"labels,omitempty"`
	CutEdges    int     `json:"cut_edges,omitempty"`
	CutFraction float64 `json:"cut_fraction,omitempty"`
	MaxDiameter int     `json:"max_diameter,omitempty"`

	// walkroute
	Delivered   int   `json:"delivered,omitempty"`
	Undelivered int   `json:"undelivered,omitempty"`
	DeliveredTo []int `json:"delivered_to,omitempty"` // per-vertex leader reached, -1 = missed budget

	PerCluster []ClusterStat `json:"per_cluster"`
	Accounting Accounting    `json:"accounting"`
}

// VertexAnswer is one projected entry of a Result: Value is the vertex's
// mate (or -1), set membership (0/1), cluster label, or leader reached
// (or -1), by family.
type VertexAnswer struct {
	V     int   `json:"v"`
	Value int64 `json:"value"`
}

// project extracts the answers for the requested vertices, ascending by
// vertex ID with duplicates removed.
func (r *Result) project(vertices []int) []VertexAnswer {
	sel := append([]int(nil), vertices...)
	sort.Ints(sel)
	out := make([]VertexAnswer, 0, len(sel))
	for i, v := range sel {
		if i > 0 && v == sel[i-1] {
			continue
		}
		var val int64
		switch r.Family {
		case "matching":
			val = int64(r.Mate[v])
		case "mis":
			for _, m := range r.Set {
				if m == v {
					val = 1
					break
				}
			}
		case "clustering":
			val = int64(r.Labels[v])
		case "walkroute":
			val = int64(r.DeliveredTo[v])
		}
		out = append(out, VertexAnswer{V: v, Value: val})
	}
	return out
}

// runQuery executes the canonical run for one (snapshot, family, params)
// key. Every run gets its own passive Observer; the snapshot's cached
// decomposition is injected so no query ever re-decomposes.
func runQuery(snap *Snapshot, family string, p Params, simWorkers int) (*Result, error) {
	obs := congest.NewObserver()
	cfg := congest.Config{Seed: p.Seed, Obs: obs, Workers: simWorkers}
	coreOpts := core.Options{Decomposition: snap.Dec, Deterministic: p.Deterministic}
	res := &Result{
		Family:   family,
		Epoch:    snap.Epoch,
		N:        snap.G.N(),
		M:        snap.G.M(),
		Clusters: len(snap.Dec.Clusters),
	}
	switch family {
	case "matching":
		mr, err := matching.ApproximateMWM(snap.G, matching.Options{Eps: p.Eps, Cfg: cfg, Core: coreOpts})
		if err != nil {
			return nil, err
		}
		res.Mate = mr.Mate
		res.MatchingSize = mr.Size()
		res.Weight = mr.Weight(snap.G)
	case "mis":
		ir, err := maxis.Approximate(snap.G, maxis.Options{Eps: p.Eps, Cfg: cfg, Core: coreOpts})
		if err != nil {
			return nil, err
		}
		res.Set = ir.Set
		res.SetSize = len(ir.Set)
	case "clustering":
		lr, err := ldd.Decompose(snap.G, ldd.Options{Eps: p.Eps, Levels: p.Levels, Cfg: cfg, Core: coreOpts})
		if err != nil {
			return nil, err
		}
		res.Labels = lr.Labels
		res.CutEdges = lr.CutEdges
		res.CutFraction = lr.CutFraction
		res.MaxDiameter = lr.MaxDiameter
	case "walkroute":
		if err := runWalkRoute(snap, p, cfg, res); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("unknown query family %q", family)
	}
	res.PerCluster = perClusterStats(snap, res)
	res.Accounting = accountingFromObserver(obs)
	return res, nil
}

// runWalkRoute routes one hello token from every vertex to its cluster
// leader over lazy random walks (Lemma 2.4) and back, against the
// snapshot's leader table.
func runWalkRoute(snap *Snapshot, p Params, cfg congest.Config, res *Result) error {
	n := snap.G.N()
	budget := p.Budget
	if budget == 0 {
		budget = snap.WalkBudget
	}
	// The exchange takes 2*budget+2 rounds; keep the simulator cap above it.
	if need := 2*budget + 16; cfg.MaxRounds < need {
		cfg.MaxRounds = need
	}
	tokens := make([][]routing.Token, n)
	for v := range tokens {
		tokens[v] = []routing.Token{{A: -1}}
	}
	plan := routing.Plan{
		Cluster:       snap.Dec.Assignment,
		Leader:        snap.Leader,
		ForwardRounds: budget,
		Strategy:      routing.RandomWalk,
	}
	if p.Deterministic {
		plan.Strategy = routing.TreeParent
		parent, err := treeParents(snap)
		if err != nil {
			return err
		}
		plan.Parent = parent
	}
	cfg.Obs.BeginPhase("walkroute")
	ex, _, err := routing.Exchange(snap.G, cfg, plan, tokens,
		func(leader int, t routing.Token) (int64, int64) { return int64(leader), 0 })
	cfg.Obs.EndPhase()
	if err != nil {
		return err
	}
	res.DeliveredTo = make([]int, n)
	for v := 0; v < n; v++ {
		res.DeliveredTo[v] = -1
		for _, resp := range ex.Responses[v] {
			if resp.Seq == 0 {
				res.DeliveredTo[v] = int(resp.A)
			}
		}
		if res.DeliveredTo[v] >= 0 {
			res.Delivered++
		} else {
			res.Undelivered++
		}
	}
	return nil
}

// treeParents builds per-cluster BFS parents toward the leaders for the
// deterministic walkroute track, sequentially from the snapshot (local
// computation on cached state, no simulator rounds).
func treeParents(snap *Snapshot) ([]int, error) {
	n := snap.G.N()
	parent := make([]int, n)
	for v := range parent {
		parent[v] = -1
	}
	for _, members := range snap.Dec.Clusters {
		root := snap.Leader[members[0]]
		// BFS restricted to the cluster.
		inCluster := snap.Dec.Assignment
		cid := inCluster[root]
		queue := []int{root}
		seen := map[int]bool{root: true}
		for len(queue) > 0 {
			u := queue[0]
			queue = queue[1:]
			snap.G.ForEachNeighbor(u, func(w, _ int) {
				if inCluster[w] == cid && !seen[w] {
					seen[w] = true
					parent[w] = u
					queue = append(queue, w)
				}
			})
		}
	}
	return parent, nil
}

// perClusterStats slices the family result along the snapshot's clusters.
func perClusterStats(snap *Snapshot, res *Result) []ClusterStat {
	stats := make([]ClusterStat, len(snap.Dec.Clusters))
	assign := snap.Dec.Assignment
	for id, members := range snap.Dec.Clusters {
		st := ClusterStat{ID: id, Leader: snap.Leader[members[0]], Size: len(members)}
		switch res.Family {
		case "matching":
			for _, v := range members {
				if m := res.Mate[v]; m > v && assign[m] == id {
					st.Stat++
				}
			}
		case "mis":
			for _, v := range res.Set {
				if assign[v] == id {
					st.Stat++
				}
			}
		case "clustering":
			labels := map[int]bool{}
			for _, v := range members {
				labels[res.Labels[v]] = true
			}
			st.Stat = len(labels)
		case "walkroute":
			leader := st.Leader
			for _, v := range members {
				if res.DeliveredTo[v] == leader {
					st.Stat++
				}
			}
		}
		stats[id] = st
	}
	return stats
}

// accountingFromObserver flattens the observer's phase tree into the
// per-query accounting: run totals plus the top-level named spans.
func accountingFromObserver(obs *congest.Observer) Accounting {
	rep := obs.Report()
	acc := Accounting{
		Rounds:   rep.Rounds,
		Messages: rep.Messages,
		Words:    rep.Words,
		Bits:     rep.Bits,
	}
	for _, ph := range rep.Phases {
		acc.Phases = append(acc.Phases, PhaseAccount{
			Name:     ph.Name,
			Rounds:   ph.Rounds,
			Messages: ph.Messages,
			Words:    ph.Words,
			Bits:     ph.Bits,
		})
	}
	return acc
}
