package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Config configures a Server.
type Config struct {
	// Spec builds the initial snapshot.
	Spec Spec
	// SimWorkers is the congest executor worker count for query runs
	// (0 = sequential; results are bit-identical for any value).
	SimWorkers int
	// BatchWindow is how long a flight leader waits for followers before
	// running (0 = run immediately; coalescing then only catches requests
	// arriving during the run itself).
	BatchWindow time.Duration
	// RunPool is the number of canonical runs executed concurrently
	// (0 = min(GOMAXPROCS, NumCPU)). Cache hits and coalesced followers
	// never occupy a pool slot.
	RunPool int
	// QueueDepth bounds the run pool's FIFO admission queue (0 = 4x the
	// pool size). When the queue is full, new canonical runs are rejected
	// with 429 + Retry-After instead of piling up.
	QueueDepth int
	// CacheBytes caps the accounted bytes of the result cache
	// (0 = 256 MiB). Coldest entries are evicted LRU-first past the cap.
	CacheBytes int64
	// Log receives operational messages (nil = discard).
	Log *log.Logger

	// blockRuns, when non-nil, gates every canonical run: the run first
	// receives from the channel before executing. Test-only hook for
	// holding the pool deliberately full.
	blockRuns chan struct{}
}

// famStats is the per-family counter block surfaced by /statz.
type famStats struct {
	requests  atomic.Int64
	errors    atomic.Int64
	rejected  atomic.Int64
	cacheHits atomic.Int64
	flights   atomic.Int64
	coalesced atomic.Int64
	batchSum  atomic.Int64
	batchMax  atomic.Int64
}

func (f *famStats) recordFlight(occupancy int64) {
	f.flights.Add(1)
	f.batchSum.Add(occupancy)
	for {
		m := f.batchMax.Load()
		if occupancy <= m || f.batchMax.CompareAndSwap(m, occupancy) {
			return
		}
	}
}

// Server is the resident query server: one atomically-swappable snapshot,
// a per-key coalescing batcher, an epoch-keyed result cache, and the HTTP
// handlers that tie them together.
type Server struct {
	cfg   Config
	cur   atomic.Pointer[Snapshot]
	epoch atomic.Int64 // last assigned epoch

	cache *resultCache
	batch *batcher
	pool  *runPool

	reloadMu     sync.Mutex // serializes snapshot builds, not queries
	reloads      atomic.Int64
	reloadErrors atomic.Int64
	mutates      atomic.Int64
	mutateErrors atomic.Int64
	mutatedOps   atomic.Int64

	fam   map[string]*famStats
	start time.Time
	mux   *http.ServeMux
}

// New builds the initial snapshot from cfg.Spec and returns a ready server.
func New(cfg Config) (*Server, error) {
	if cfg.Log == nil {
		cfg.Log = log.New(io.Discard, "", 0)
	}
	s := &Server{
		cfg:   cfg,
		cache: newResultCache(cfg.CacheBytes),
		batch: newBatcher(cfg.BatchWindow),
		pool:  newRunPool(cfg.RunPool, cfg.QueueDepth),
		fam:   make(map[string]*famStats),
		start: time.Now(),
	}
	for _, f := range Families() {
		s.fam[f] = &famStats{}
	}
	snap, err := BuildSnapshot(cfg.Spec, 1)
	if err != nil {
		return nil, err
	}
	s.epoch.Store(1)
	s.cur.Store(snap)
	cfg.Log.Printf("serve: snapshot epoch 1: n=%d m=%d clusters=%d phi=%.4g (load %v, decompose %v)",
		snap.G.N(), snap.G.M(), len(snap.Dec.Clusters), snap.Dec.Phi, snap.LoadDuration, snap.BuildDuration)

	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/healthz", s.handleHealthz)
	s.mux.HandleFunc("/statz", s.handleStatz)
	s.mux.HandleFunc("/reload", s.handleReload)
	s.mux.HandleFunc("/mutate", s.handleMutate)
	s.mux.HandleFunc("/query/", s.handleQuery)
	return s, nil
}

// Handler returns the server's HTTP handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Epoch returns the current snapshot epoch.
func (s *Server) Epoch() int64 { return s.epoch.Load() }

// Close retires the current snapshot and stops the run pool. Call after
// the HTTP listener has drained (http.Server.Shutdown): the drain order is
// listener first (no new requests), then the pool (no queued runs left to
// strand), then the snapshot, which is freed — and its mmap unmapped —
// once the last in-flight request releases it.
func (s *Server) Close() {
	s.pool.close()
	if snap := s.cur.Swap(nil); snap != nil {
		snap.retire()
	}
}

// errShutdown is returned once Close has swapped the current snapshot out;
// handlers map it to 503.
var errShutdown = errors.New("server is shut down")

// snapshot pins the current snapshot for one request. The retry loop only
// spins when a reload retires a fully drained snapshot between the load
// and the acquire — the next load observes the replacement.
func (s *Server) snapshot() (*Snapshot, error) {
	for {
		snap := s.cur.Load()
		if snap == nil {
			return nil, errShutdown
		}
		if snap.acquire() {
			return snap, nil
		}
	}
}

// Reload builds a snapshot from spec (zero-value fields inherit the
// current spec), swaps it in, and retires the predecessor. Queries keep
// running against whichever snapshot they pinned; none are dropped.
func (s *Server) Reload(spec Spec) (*Snapshot, error) {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	cur := s.cur.Load()
	if cur == nil {
		return nil, errShutdown
	}
	merged := cur.Spec
	if spec.Path != "" {
		merged.Path = spec.Path
		merged.Mmap = spec.Mmap
	}
	if spec.Eps != 0 {
		merged.Eps = spec.Eps
	}
	if spec.Seed != 0 {
		merged.Seed = spec.Seed
	}
	if spec.DecWorkers != 0 {
		merged.DecWorkers = spec.DecWorkers
	}
	epoch := s.epoch.Load() + 1
	snap, err := BuildSnapshot(merged, epoch) // built entirely off to the side
	if err != nil {
		s.reloadErrors.Add(1)
		return nil, err
	}
	s.epoch.Store(epoch)
	old := s.cur.Swap(snap)
	s.cache.swapEpoch(epoch)
	if old != nil {
		old.retire()
	}
	s.reloads.Add(1)
	s.cfg.Log.Printf("serve: swapped to epoch %d: n=%d m=%d clusters=%d (load %v, decompose %v)",
		epoch, snap.G.N(), snap.G.M(), len(snap.Dec.Clusters), snap.LoadDuration, snap.BuildDuration)
	return snap, nil
}

// QueryResponse is the envelope of a POST /query/<family> answer. Result
// is the canonical shared outcome (identical for every member of a batch
// and for a cache hit); the envelope fields describe how this particular
// request was served. When a projection is requested, the bulky per-vertex
// arrays are omitted from Result and Selection carries the answers.
type QueryResponse struct {
	Family    string         `json:"family"`
	Epoch     int64          `json:"epoch"`
	Cached    bool           `json:"cached"`
	BatchSize int64          `json:"batch_size"`
	TookMs    float64        `json:"took_ms"`
	Selection []VertexAnswer `json:"selection,omitempty"`
	Result    *Result        `json:"result"`
}

type errorResponse struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	data, err := json.Marshal(v)
	if err != nil {
		http.Error(w, `{"error":"encoding failure"}`, http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(append(data, '\n'))
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "epoch": s.epoch.Load()})
}

// statzFamily is the JSON shape of one family's counters.
type statzFamily struct {
	Requests  int64   `json:"requests"`
	Errors    int64   `json:"errors"`
	Rejected  int64   `json:"rejected"`
	CacheHits int64   `json:"cache_hits"`
	Flights   int64   `json:"flights"`
	Coalesced int64   `json:"coalesced"`
	BatchMean float64 `json:"batch_mean"`
	BatchMax  int64   `json:"batch_max"`
}

func (s *Server) handleStatz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	snap, err := s.snapshot()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer snap.release()
	families := make(map[string]statzFamily, len(s.fam))
	for name, f := range s.fam {
		sf := statzFamily{
			Requests:  f.requests.Load(),
			Errors:    f.errors.Load(),
			Rejected:  f.rejected.Load(),
			CacheHits: f.cacheHits.Load(),
			Flights:   f.flights.Load(),
			Coalesced: f.coalesced.Load(),
			BatchMax:  f.batchMax.Load(),
		}
		if sf.Flights > 0 {
			sf.BatchMean = float64(f.batchSum.Load()) / float64(sf.Flights)
		}
		families[name] = sf
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch":          snap.Epoch,
		"uptime_seconds": time.Since(s.start).Seconds(),
		"graph": map[string]any{
			"path": snap.Spec.Path, "mmap": snap.Spec.Mmap, "zero_copy": snap.ZeroCopy,
			"n": snap.G.N(), "m": snap.G.M(),
		},
		"decomposition": map[string]any{
			"eps": snap.Spec.Eps, "phi": snap.Dec.Phi, "seed": snap.Spec.Seed,
			"clusters": len(snap.Dec.Clusters), "cut_edges": len(snap.Dec.Removed),
			"load_ms":     float64(snap.LoadDuration.Nanoseconds()) / 1e6,
			"build_ms":    float64(snap.BuildDuration.Nanoseconds()) / 1e6,
			"walk_budget": snap.WalkBudget,
		},
		"reloads":       s.reloads.Load(),
		"reload_errors": s.reloadErrors.Load(),
		"mutates":       s.mutates.Load(),
		"mutate_errors": s.mutateErrors.Load(),
		"mutated_ops":   s.mutatedOps.Load(),
		"mutations":     snap.Mutations,
		"cache_entries": s.cache.size(snap.Epoch),
		"cache":         s.cache.statz(),
		"pool":          s.pool.statz(),
		"families":      families,
	})
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var spec Spec
	body, err := io.ReadAll(io.LimitReader(r.Body, 1<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > 0 {
		if err := json.Unmarshal(body, &spec); err != nil {
			writeError(w, http.StatusBadRequest, "bad reload spec: %v", err)
			return
		}
	}
	snap, err := s.Reload(spec)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "reload failed: %v", err)
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"epoch": snap.Epoch, "n": snap.G.N(), "m": snap.G.M(),
		"clusters": len(snap.Dec.Clusters),
		"load_ms":  float64(snap.LoadDuration.Nanoseconds()) / 1e6,
		"build_ms": float64(snap.BuildDuration.Nanoseconds()) / 1e6,
	})
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	family := strings.TrimPrefix(r.URL.Path, "/query/")
	fs, ok := s.fam[family]
	if !ok {
		writeError(w, http.StatusNotFound, "unknown query family %q (have %s)",
			family, strings.Join(Families(), ", "))
		return
	}
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var p Params
	body, err := io.ReadAll(io.LimitReader(r.Body, 8<<20))
	if err != nil {
		writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	if len(body) > 0 {
		dec := json.NewDecoder(bytes.NewReader(body))
		dec.DisallowUnknownFields()
		if err := dec.Decode(&p); err != nil {
			writeError(w, http.StatusBadRequest, "bad query params: %v", err)
			return
		}
	}

	snap, err := s.snapshot()
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	defer snap.release()

	p = p.withDefaults(family)
	if err := p.validate(family, snap.G.N()); err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	fs.requests.Add(1)

	t0 := time.Now()
	key := p.key(family)
	var (
		enc       *encResult
		cached    bool
		occupancy = int64(1)
	)
	if c := s.cache.get(snap.Epoch, key); c != nil {
		enc, cached = c, true
		fs.cacheHits.Add(1)
	} else {
		var led bool
		// The flight key carries the epoch so that requests pinned to
		// different snapshots can never share a run. Only the flight leader
		// touches the run pool: followers wait on the flight, cache hits
		// above never get here, so pool saturation throttles exactly the
		// requests that would start a new canonical run.
		enc, occupancy, led, err = s.batch.do(fmt.Sprintf("e%d|%s", snap.Epoch, key), func() (*encResult, error) {
			var (
				e    *encResult
				rerr error
			)
			perr := s.pool.submit(func() {
				defer func() {
					if rec := recover(); rec != nil {
						rerr = fmt.Errorf("canonical run panicked: %v", rec)
					}
				}()
				if s.cfg.blockRuns != nil {
					<-s.cfg.blockRuns
				}
				var r *Result
				r, rerr = runQuery(snap, family, p, s.cfg.SimWorkers)
				if rerr != nil {
					return
				}
				// Encode once, inside the pool slot (encoding cost scales
				// with the result, so it is admission-controlled too), and
				// publish before the flight deregisters so late arrivals
				// hit the cache instead of re-running.
				e = newEncResult(r)
				s.cache.put(snap.Epoch, key, e)
			})
			if perr != nil {
				return nil, perr
			}
			return e, rerr
		})
		if errors.Is(err, ErrSaturated) {
			fs.rejected.Add(1)
			s.writeSaturated(w)
			return
		}
		if err != nil {
			fs.errors.Add(1)
			writeError(w, http.StatusInternalServerError, "query failed: %v", err)
			return
		}
		if led {
			fs.recordFlight(occupancy)
		} else {
			fs.coalesced.Add(1)
		}
	}

	// Hot response path: envelope appended around the pre-encoded result
	// bytes in a pooled buffer. A cache hit is a header write plus one
	// buffer copy — no per-vertex encoding work at all.
	tookMs := float64(time.Since(t0).Nanoseconds()) / 1e6
	var (
		selection   []VertexAnswer
		resultBytes = enc.full
	)
	if sel := p.selection(); len(sel) > 0 {
		selection = enc.res.project(sel)
		resultBytes = enc.trimmed
	}
	rb := getRespBuf()
	b := appendQueryResponse(rb.b[:0], family, snap.Epoch, cached, occupancy, tookMs, selection, resultBytes)
	b = append(b, '\n')
	h := w.Header()
	h.Set("Content-Type", "application/json")
	h.Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	w.Write(b)
	rb.b = b
	putRespBuf(rb)
}

// writeSaturated answers a request whose canonical run could not be
// admitted: 429 with a Retry-After estimate in both the conventional
// header and the structured JSON body.
func (s *Server) writeSaturated(w http.ResponseWriter) {
	retry := int(s.pool.retryAfter().Round(time.Second) / time.Second)
	if retry < 1 {
		retry = 1
	}
	w.Header().Set("Retry-After", strconv.Itoa(retry))
	writeJSON(w, http.StatusTooManyRequests, saturatedResponse{
		Error:             "run pool saturated: admission queue is full, retry later",
		RetryAfterSeconds: retry,
	})
}

// saturatedResponse is the structured 429 error body.
type saturatedResponse struct {
	Error             string `json:"error"`
	RetryAfterSeconds int    `json:"retry_after_seconds"`
}
