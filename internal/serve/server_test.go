package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// writeTestGraph writes a connected ring-with-chords graph of n vertices as
// a text edge list and returns its path.
func writeTestGraph(t *testing.T, n int) string {
	t.Helper()
	var buf bytes.Buffer
	type edge struct{ u, v int }
	var edges []edge
	for i := 0; i < n; i++ {
		edges = append(edges, edge{i, (i + 1) % n})
	}
	for i := 0; i < n/2; i++ {
		u, v := i, (i+n/2)%n
		if u != v && v != (u+1)%n && u != (v+1)%n {
			edges = append(edges, edge{u, v})
		}
	}
	fmt.Fprintf(&buf, "%d %d\n", n, len(edges))
	for _, e := range edges {
		fmt.Fprintf(&buf, "%d %d\n", e.u, e.v)
	}
	path := filepath.Join(t.TempDir(), fmt.Sprintf("ring%d.txt", n))
	if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func newTestServer(t *testing.T, path string, window time.Duration) (*Server, *httptest.Server) {
	t.Helper()
	// Deep admission queue: these tests exercise serving semantics, not
	// backpressure (overload_test.go owns that), so no request should ever
	// see 429 here even on a single-CPU host under -race.
	srv, err := New(Config{Spec: Spec{Path: path, Eps: 0.3, Seed: 1}, BatchWindow: window, QueueDepth: 256})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts
}

func getJSON(t *testing.T, url string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
	return out
}

func postJSON(t *testing.T, url, body string, wantStatus int) map[string]any {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		var e map[string]any
		json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("POST %s: status %d (%v), want %d", url, resp.StatusCode, e, wantStatus)
	}
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatalf("POST %s: decode: %v", url, err)
	}
	return out
}

func postQuery(t *testing.T, base, family, body string) (*QueryResponse, int) {
	t.Helper()
	resp, err := http.Post(base+"/query/"+family, "application/json", bytes.NewReader([]byte(body)))
	if err != nil {
		t.Fatalf("POST /query/%s: %v", family, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, resp.StatusCode
	}
	var qr QueryResponse
	if err := json.NewDecoder(resp.Body).Decode(&qr); err != nil {
		t.Fatalf("POST /query/%s: decode: %v", family, err)
	}
	return &qr, resp.StatusCode
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, writeTestGraph(t, 24), 0)
	out := getJSON(t, ts.URL+"/healthz", http.StatusOK)
	if out["status"] != "ok" || out["epoch"].(float64) != 1 {
		t.Fatalf("healthz = %v", out)
	}
	resp, err := http.Post(ts.URL+"/healthz", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("POST /healthz: status %d, want 405", resp.StatusCode)
	}
}

func TestStatz(t *testing.T) {
	path := writeTestGraph(t, 24)
	_, ts := newTestServer(t, path, 0)
	out := getJSON(t, ts.URL+"/statz", http.StatusOK)
	if out["epoch"].(float64) != 1 {
		t.Fatalf("statz epoch = %v", out["epoch"])
	}
	g := out["graph"].(map[string]any)
	if g["path"] != path || g["n"].(float64) != 24 {
		t.Fatalf("statz graph = %v", g)
	}
	dec := out["decomposition"].(map[string]any)
	if dec["clusters"].(float64) < 1 {
		t.Fatalf("statz decomposition = %v", dec)
	}
	fams := out["families"].(map[string]any)
	for _, f := range Families() {
		if _, ok := fams[f]; !ok {
			t.Fatalf("statz families missing %q: %v", f, fams)
		}
	}
}

func TestQueryFamilies(t *testing.T) {
	_, ts := newTestServer(t, writeTestGraph(t, 24), 0)
	for _, family := range Families() {
		qr, status := postQuery(t, ts.URL, family, `{"seed": 3}`)
		if status != http.StatusOK {
			t.Fatalf("%s: status %d", family, status)
		}
		if qr.Family != family || qr.Epoch != 1 || qr.Cached {
			t.Fatalf("%s: envelope %+v", family, qr)
		}
		r := qr.Result
		if r.N != 24 || r.Clusters < 1 || len(r.PerCluster) != r.Clusters {
			t.Fatalf("%s: result %+v", family, r)
		}
		if r.Accounting.Rounds <= 0 || r.Accounting.Messages <= 0 {
			t.Fatalf("%s: empty accounting %+v", family, r.Accounting)
		}
		switch family {
		case "matching":
			if len(r.Mate) != 24 || r.MatchingSize <= 0 {
				t.Fatalf("matching result %+v", r)
			}
		case "mis":
			if r.SetSize <= 0 || len(r.Set) != r.SetSize {
				t.Fatalf("mis result %+v", r)
			}
		case "clustering":
			if len(r.Labels) != 24 {
				t.Fatalf("clustering result %+v", r)
			}
		case "walkroute":
			if len(r.DeliveredTo) != 24 || r.Delivered+r.Undelivered != 24 {
				t.Fatalf("walkroute result %+v", r)
			}
		}

		// Identical params must now be a cache hit with the same result.
		qr2, _ := postQuery(t, ts.URL, family, `{"seed": 3}`)
		if !qr2.Cached {
			t.Fatalf("%s: second identical query not cached", family)
		}
		b1, _ := json.Marshal(qr.Result)
		b2, _ := json.Marshal(qr2.Result)
		if !bytes.Equal(b1, b2) {
			t.Fatalf("%s: cached result differs from original", family)
		}
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := newTestServer(t, writeTestGraph(t, 24), 0)
	cases := []struct {
		family, body string
		status       int
	}{
		{"nosuch", `{}`, http.StatusNotFound},
		{"matching", `{"bogus": 1}`, http.StatusBadRequest},
		{"matching", `{"eps": 2.0}`, http.StatusBadRequest},
		{"matching", `{"eps": -0.5}`, http.StatusBadRequest},
		{"matching", `{"vertices": [99]}`, http.StatusBadRequest},
		{"walkroute", `{"budget": -1}`, http.StatusBadRequest},
		{"matching", `not json`, http.StatusBadRequest},
	}
	for _, c := range cases {
		if _, status := postQuery(t, ts.URL, c.family, c.body); status != c.status {
			t.Errorf("POST /query/%s %q: status %d, want %d", c.family, c.body, status, c.status)
		}
	}
	resp, err := http.Get(ts.URL + "/query/matching")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /query/matching: status %d, want 405", resp.StatusCode)
	}
}

func TestQueryProjection(t *testing.T) {
	_, ts := newTestServer(t, writeTestGraph(t, 24), 0)
	qr, status := postQuery(t, ts.URL, "matching", `{"vertices": [5, 0, 5, 2]}`)
	if status != http.StatusOK {
		t.Fatalf("status %d", status)
	}
	want := []int{0, 2, 5} // sorted, deduped
	if len(qr.Selection) != len(want) {
		t.Fatalf("selection %+v, want vertices %v", qr.Selection, want)
	}
	for i, va := range qr.Selection {
		if va.V != want[i] {
			t.Fatalf("selection %+v, want vertices %v", qr.Selection, want)
		}
	}
	if qr.Result.Mate != nil || qr.Result.PerCluster != nil {
		t.Fatalf("projected result not trimmed: %+v", qr.Result)
	}
	// The projection must agree with the full (cached, canonical) result.
	full, _ := postQuery(t, ts.URL, "matching", `{}`)
	if !full.Cached {
		t.Fatalf("full query should hit the projection's cached canonical run")
	}
	for _, va := range qr.Selection {
		if va.Value != int64(full.Result.Mate[va.V]) {
			t.Fatalf("projection %+v disagrees with full mate %v", va, full.Result.Mate[va.V])
		}
	}
}

func TestReload(t *testing.T) {
	g1 := writeTestGraph(t, 24)
	g2 := writeTestGraph(t, 40)
	srv, ts := newTestServer(t, g1, 0)

	// Method and body errors first.
	resp, err := http.Get(ts.URL + "/reload")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /reload: status %d, want 405", resp.StatusCode)
	}
	postJSON(t, ts.URL+"/reload", `not json`, http.StatusBadRequest)
	postJSON(t, ts.URL+"/reload", `{"path": "/nonexistent/graph.txt"}`, http.StatusUnprocessableEntity)
	if srv.Epoch() != 1 {
		t.Fatalf("failed reload advanced the epoch to %d", srv.Epoch())
	}

	// Seed the cache, then swap to g2 and make sure the cache was dropped.
	before, _ := postQuery(t, ts.URL, "mis", `{}`)
	out := postJSON(t, ts.URL+"/reload", fmt.Sprintf(`{"path": %q}`, g2), http.StatusOK)
	if out["epoch"].(float64) != 2 || out["n"].(float64) != 40 {
		t.Fatalf("reload response %v", out)
	}
	after, _ := postQuery(t, ts.URL, "mis", `{}`)
	if after.Cached {
		t.Fatalf("query after swap served a stale cached result")
	}
	if after.Epoch != 2 || after.Result.N != 40 || before.Result.N != 24 {
		t.Fatalf("post-swap result %+v", after.Result)
	}

	// Empty body rebuilds the current spec.
	out = postJSON(t, ts.URL+"/reload", ``, http.StatusOK)
	if out["epoch"].(float64) != 3 || out["n"].(float64) != 40 {
		t.Fatalf("rebuild response %v", out)
	}

	stats := getJSON(t, ts.URL+"/statz", http.StatusOK)
	if stats["reloads"].(float64) != 2 || stats["reload_errors"].(float64) != 1 {
		t.Fatalf("statz reload counters: %v %v", stats["reloads"], stats["reload_errors"])
	}
}

// TestSwapTorture races queries against hot reloads between two graphs and
// asserts the serving contract: zero failed requests, no torn snapshots
// (every response's epoch and graph size belong together), and per-client
// monotone epochs. Run with -race.
func TestSwapTorture(t *testing.T) {
	g1 := writeTestGraph(t, 24)
	g2 := writeTestGraph(t, 40)
	srv, ts := newTestServer(t, g1, 0)

	// nByEpoch records the graph size each epoch was built from: odd epochs
	// serve g1 (24 vertices), even ones g2 (40).
	nFor := func(epoch int64) int {
		if epoch%2 == 1 {
			return 24
		}
		return 40
	}

	const clients = 8
	const perClient = 30
	var wg sync.WaitGroup
	var failures atomic.Int64
	errCh := make(chan error, clients)
	families := Families()
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			lastEpoch := int64(0)
			for i := 0; i < perClient; i++ {
				family := families[(c+i)%len(families)]
				body := fmt.Sprintf(`{"seed": %d}`, 1+(c+i)%3)
				resp, err := http.Post(ts.URL+"/query/"+family, "application/json", bytes.NewReader([]byte(body)))
				if err != nil {
					failures.Add(1)
					continue
				}
				var qr QueryResponse
				err = json.NewDecoder(resp.Body).Decode(&qr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					failures.Add(1)
					continue
				}
				if qr.Epoch < lastEpoch {
					errCh <- fmt.Errorf("client %d: epoch regressed %d -> %d", c, lastEpoch, qr.Epoch)
					return
				}
				lastEpoch = qr.Epoch
				if want := nFor(qr.Epoch); qr.Result.N != want {
					errCh <- fmt.Errorf("client %d: torn snapshot: epoch %d served n=%d, want %d",
						c, qr.Epoch, qr.Result.N, want)
					return
				}
			}
		}(c)
	}

	const reloads = 6
	for r := 0; r < reloads; r++ {
		path := g2
		if r%2 == 1 {
			path = g1
		}
		if _, err := srv.Reload(Spec{Path: path}); err != nil {
			t.Fatalf("reload %d: %v", r, err)
		}
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	if n := failures.Load(); n != 0 {
		t.Fatalf("%d requests failed during hot swaps, want 0", n)
	}
	if got := srv.Epoch(); got != 1+reloads {
		t.Fatalf("final epoch %d, want %d", got, 1+reloads)
	}
}

// TestCoalescingDeterminism fires concurrent identical requests into a wide
// batch window and asserts (a) they coalesce into a shared flight and (b)
// the batched result is bit-identical to a sequential run of the same
// params on a fresh server — for every family.
func TestCoalescingDeterminism(t *testing.T) {
	path := writeTestGraph(t, 24)
	_, batched := newTestServer(t, path, 150*time.Millisecond)
	_, sequential := newTestServer(t, path, 0)

	for _, family := range Families() {
		const concurrent = 6
		body := `{"seed": 7}`
		results := make([]*QueryResponse, concurrent)
		var wg sync.WaitGroup
		for i := 0; i < concurrent; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				qr, status := postQuery(t, batched.URL, family, body)
				if status == http.StatusOK {
					results[i] = qr
				}
			}(i)
		}
		wg.Wait()

		var maxBatch int64
		var canonical []byte
		for i, qr := range results {
			if qr == nil {
				t.Fatalf("%s: request %d failed", family, i)
			}
			if qr.BatchSize > maxBatch {
				maxBatch = qr.BatchSize
			}
			b, _ := json.Marshal(qr.Result)
			if canonical == nil {
				canonical = b
			} else if !bytes.Equal(canonical, b) {
				t.Fatalf("%s: batched members returned different results", family)
			}
		}
		if maxBatch < 2 {
			t.Fatalf("%s: no coalescing observed (max batch size %d)", family, maxBatch)
		}

		seq, status := postQuery(t, sequential.URL, family, body)
		if status != http.StatusOK {
			t.Fatalf("%s: sequential run failed: %d", family, status)
		}
		sb, _ := json.Marshal(seq.Result)
		if !bytes.Equal(canonical, sb) {
			t.Fatalf("%s: batched result differs from sequential run:\nbatched:    %s\nsequential: %s",
				family, canonical, sb)
		}
	}
}

// TestDeterministicTrack covers the deterministic=true variants (tree
// routing for walkroute, deterministic framework track for the others).
func TestDeterministicTrack(t *testing.T) {
	_, ts := newTestServer(t, writeTestGraph(t, 24), 0)
	for _, family := range Families() {
		qr, status := postQuery(t, ts.URL, family, `{"deterministic": true}`)
		if status != http.StatusOK {
			t.Fatalf("%s deterministic: status %d", family, status)
		}
		if qr.Cached {
			t.Fatalf("%s: deterministic params unexpectedly shared the default cache key", family)
		}
		if family == "walkroute" && qr.Result.Delivered == 0 {
			t.Fatalf("walkroute deterministic: nothing delivered: %+v", qr.Result)
		}
	}
}

func TestServerClose(t *testing.T) {
	srv, err := New(Config{Spec: Spec{Path: writeTestGraph(t, 24)}})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	srv.Close()
	resp, err := http.Get(ts.URL + "/statz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("statz after Close: status %d, want 503", resp.StatusCode)
	}
	// Close is idempotent.
	srv.Close()
}
