package serve

import (
	"fmt"
	"sync/atomic"
	"time"

	"expandergap/internal/expander"
	"expandergap/internal/graph"
	"expandergap/internal/routing"
)

// Spec describes how to build a snapshot: where the graph comes from and
// which decomposition to compute over it.
type Spec struct {
	// Path is the graph file (text edge list or binary CSR; sniffed by
	// magic).
	Path string `json:"path"`
	// Mmap memory-maps a binary CSR file instead of reading it onto the
	// heap. The file must outlive the mapping: it stays open/mapped until
	// the snapshot is retired AND the last request using it finishes.
	Mmap bool `json:"mmap"`
	// Eps is the decomposition edge-removal budget ε.
	Eps float64 `json:"eps"`
	// Seed drives the decomposer.
	Seed int64 `json:"seed"`
	// DecWorkers sizes the parallel decomposition recursion (<=1 runs the
	// sequential ground truth; output is identical either way).
	DecWorkers int `json:"dec_workers"`
}

func (s Spec) withDefaults() Spec {
	if s.Eps <= 0 || s.Eps >= 1 {
		s.Eps = 0.3
	}
	if s.Seed == 0 {
		s.Seed = 1
	}
	return s
}

// Snapshot is one immutable serving state: a graph, its expander
// decomposition, the derived leader/routing tables, and the epoch that
// identifies it. Snapshots are shared by reference between the server and
// all in-flight requests; nothing in a snapshot is ever mutated after
// build.
type Snapshot struct {
	// Epoch is the monotone identity of this snapshot. Every query
	// response and cache key carries it.
	Epoch int64
	// Spec is the build recipe (POST /reload with no body rebuilds it).
	Spec Spec
	// G is the served network.
	G *graph.Graph
	// Dec is the cached expander decomposition every query amortizes.
	Dec *expander.Decomposition
	// Leader maps each vertex to its cluster's leader: the member with
	// maximum intra-cluster degree, lowest ID on ties (the §2.3
	// convention).
	Leader []int
	// WalkBudget is the default forward budget for walk-routing queries:
	// the theoretical WalkBudget(φ, n) capped at 8n+256 (real clusters
	// beat the worst-case conductance target by far).
	WalkBudget int
	// ZeroCopy reports whether G aliases a live mmap (true only on the
	// mmap path on supporting hosts).
	ZeroCopy bool
	// Mutations is the cumulative count of /mutate ops applied to the
	// serving graph since it was last loaded from Spec.Path; a reload
	// resets it to zero. A mutated snapshot is heap-backed even if its
	// ancestor was mmapped — Compact always materializes fresh CSR arrays.
	Mutations int64
	// LoadDuration and BuildDuration split the snapshot build cost into
	// graph loading and decomposition.
	LoadDuration  time.Duration
	BuildDuration time.Duration

	mapped *graph.Mapped
	// refs counts the server's own reference (1 from birth) plus one per
	// in-flight request. It only reaches zero after retire(), at which
	// point the mmap (if any) is released; acquire never revives a
	// drained snapshot.
	refs atomic.Int64
}

// BuildSnapshot loads the graph named by spec and decomposes it. The whole
// build happens off to the side: nothing is shared with any live snapshot,
// which is what makes the /reload swap safe.
func BuildSnapshot(spec Spec, epoch int64) (*Snapshot, error) {
	spec = spec.withDefaults()
	if spec.Path == "" {
		return nil, fmt.Errorf("serve: snapshot spec has no graph path")
	}
	t0 := time.Now()
	var (
		g      *graph.Graph
		mapped *graph.Mapped
		err    error
	)
	if spec.Mmap {
		mapped, err = graph.OpenMapped(spec.Path)
		if err != nil {
			return nil, fmt.Errorf("serve: mmap %s: %w", spec.Path, err)
		}
		g = mapped.Graph
	} else {
		g, err = graph.LoadFile(spec.Path)
		if err != nil {
			return nil, fmt.Errorf("serve: load %s: %w", spec.Path, err)
		}
	}
	loadDur := time.Since(t0)

	t1 := time.Now()
	dec, err := expander.Decompose(g, spec.Eps, expander.Options{Seed: spec.Seed, Workers: spec.DecWorkers})
	if err != nil {
		if mapped != nil {
			mapped.Close()
		}
		return nil, fmt.Errorf("serve: decompose %s: %w", spec.Path, err)
	}
	s := &Snapshot{
		Epoch:         epoch,
		Spec:          spec,
		G:             g,
		Dec:           dec,
		Leader:        computeLeaders(g, dec),
		WalkBudget:    defaultWalkBudget(dec.Phi, g.N()),
		ZeroCopy:      mapped != nil && graph.MapIsZeroCopy(),
		LoadDuration:  loadDur,
		BuildDuration: time.Since(t1),
		mapped:        mapped,
	}
	s.refs.Store(1)
	return s, nil
}

// acquire pins the snapshot for one request. It fails only on a snapshot
// that has already fully drained (retired with no requests left), in which
// case the caller must re-read the current pointer.
func (s *Snapshot) acquire() bool {
	for {
		r := s.refs.Load()
		if r <= 0 {
			return false
		}
		if s.refs.CompareAndSwap(r, r+1) {
			return true
		}
	}
}

// release drops one pin. The last release after retire() frees the mmap.
func (s *Snapshot) release() {
	if s.refs.Add(-1) == 0 && s.mapped != nil {
		s.mapped.Close()
	}
}

// retire drops the server's own reference after a swap (or at shutdown).
// In-flight requests keep the snapshot alive until they finish.
func (s *Snapshot) retire() { s.release() }

// computeLeaders elects, sequentially at build time, the max-intra-cluster-
// degree member (lowest ID on ties) of every cluster — the same (degree,
// ID) order §2.3's message-passing election uses.
func computeLeaders(g *graph.Graph, dec *expander.Decomposition) []int {
	n := g.N()
	inDeg := make([]int, n)
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if dec.Assignment[e.U] == dec.Assignment[e.V] {
			inDeg[e.U]++
			inDeg[e.V]++
		}
	}
	leader := make([]int, n)
	for _, members := range dec.Clusters {
		best := members[0] // members ascending, so ties keep the lowest ID
		for _, v := range members[1:] {
			if inDeg[v] > inDeg[best] {
				best = v
			}
		}
		for _, v := range members {
			leader[v] = best
		}
	}
	return leader
}

func defaultWalkBudget(phi float64, n int) int {
	b := routing.WalkBudget(phi, n)
	if hi := 8*n + 256; b > hi {
		b = hi
	}
	return b
}
