package solvers

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestBallCarvingCutBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, g := range []*graph.Graph{
		graph.Grid(12, 12),
		graph.TriangulatedGrid(10, 10),
		graph.RandomMaximalPlanar(150, rng),
	} {
		for _, eps := range []float64{0.2, 0.5} {
			res := BallCarving(g, eps)
			if float64(res.CutEdges) > eps*float64(g.M())+1 {
				t.Errorf("%v eps=%v: cut %d exceeds ε·m = %v",
					g, eps, res.CutEdges, eps*float64(g.M()))
			}
		}
	}
}

func TestBallCarvingDiameterLogBound(t *testing.T) {
	g := graph.Grid(14, 14)
	eps := 0.3
	res := BallCarving(g, eps)
	// Radius per ball ≤ log_{1+ε}(m) + 2; diameter ≤ twice that.
	bound := 2 * (math.Log(float64(g.M()))/math.Log(1+eps) + 3)
	if float64(res.MaxDiameter) > bound {
		t.Errorf("diameter %d exceeds O(log m / ε) bound %v", res.MaxDiameter, bound)
	}
}

func TestBallCarvingCoversEverything(t *testing.T) {
	g := graph.Disjoint(graph.Cycle(5), graph.Path(4), graph.Path(1))
	res := BallCarving(g, 0.4)
	for v, l := range res.Labels {
		if l < 0 {
			t.Errorf("vertex %d unassigned", v)
		}
	}
}

// Property: carved clusters are connected and labels partition V.
func TestQuickBallCarvingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 8 + rng.Intn(40)
		g := graph.RandomPlanar(n, 0.6, rng)
		res := BallCarving(g, 0.3)
		groups := make(map[int][]int)
		for v, l := range res.Labels {
			if l < 0 {
				return false
			}
			groups[l] = append(groups[l], v)
		}
		for _, members := range groups {
			sub, _ := g.InducedSubgraph(members)
			if !sub.Connected() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestDoubleTorusGenerator(t *testing.T) {
	g := graph.DoubleTorus(4)
	if g.N() != 32 {
		t.Errorf("N = %d, want 32", g.N())
	}
	if g.M() != 2*32+2 {
		t.Errorf("M = %d, want 66", g.M())
	}
	if !g.Connected() {
		t.Error("double torus should be connected")
	}
}
