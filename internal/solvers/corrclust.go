package solvers

import (
	"math/rand"
	"sort"

	"expandergap/internal/graph"
)

// CorrClustExactLimit bounds the exact correlation-clustering search.
const CorrClustExactLimit = 13

// CorrelationScore returns the agreement-maximization objective of §3.3 for
// the clustering given as per-vertex labels: the number of intra-cluster
// positive edges plus inter-cluster negative edges.
func CorrelationScore(g *graph.Graph, labels []int) int64 {
	var score int64
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		same := labels[e.U] == labels[e.V]
		if (same && g.Sign(i) == 1) || (!same && g.Sign(i) == -1) {
			score++
		}
	}
	return score
}

// CorrelationClusteringExact returns an agreement-maximizing clustering of a
// signed graph as per-vertex labels, by exhaustive search over set
// partitions (restricted growth strings) with an admissible bound. Panics
// for n > CorrClustExactLimit.
func CorrelationClusteringExact(g *graph.Graph) []int {
	n := g.N()
	if n > CorrClustExactLimit {
		panic("solvers: CorrelationClusteringExact limited to 13 vertices; use CorrelationClusteringLocalSearch")
	}
	if n == 0 {
		return nil
	}
	// edgesAt[v]: edges from v to vertices with smaller index — scored when
	// v is assigned.
	type halfEdge struct {
		to   int
		sign int8
	}
	edgesAt := make([][]halfEdge, n)
	totalEdges := make([]int, n+1) // suffix count of unscored edges
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		hi := e.V
		lo := e.U
		if hi < lo {
			hi, lo = lo, hi
		}
		edgesAt[hi] = append(edgesAt[hi], halfEdge{to: lo, sign: g.Sign(i)})
	}
	for v := n - 1; v >= 0; v-- {
		totalEdges[v] = totalEdges[v+1] + len(edgesAt[v])
	}
	labels := make([]int, n)
	best := make([]int, n)
	var bestScore int64 = -1
	var cur int64
	var rec func(v, maxLabel int)
	rec = func(v, maxLabel int) {
		if v == n {
			if cur > bestScore {
				bestScore = cur
				copy(best, labels)
			}
			return
		}
		if cur+int64(totalEdges[v]) <= bestScore {
			return // even scoring every remaining edge cannot win
		}
		for lab := 0; lab <= maxLabel+1 && lab <= v; lab++ {
			labels[v] = lab
			var gained int64
			for _, he := range edgesAt[v] {
				same := labels[he.to] == lab
				if (same && he.sign == 1) || (!same && he.sign == -1) {
					gained++
				}
			}
			cur += gained
			next := maxLabel
			if lab > maxLabel {
				next = lab
			}
			rec(v+1, next)
			cur -= gained
		}
	}
	rec(0, -1)
	return best
}

// CorrelationClusteringLocalSearch improves a starting clustering by
// repeated best single-vertex moves (to a neighboring cluster, a fresh
// singleton, or staying) until a local optimum or maxPasses passes. The
// starting point is the connected components of the positive subgraph, a
// strong initializer for agreement maximization.
func CorrelationClusteringLocalSearch(g *graph.Graph, maxPasses int) []int {
	n := g.N()
	labels := positiveComponents(g)
	if n == 0 {
		return labels
	}
	nextLabel := 0
	for _, l := range labels {
		if l >= nextLabel {
			nextLabel = l + 1
		}
	}
	for pass := 0; pass < maxPasses; pass++ {
		improved := false
		for v := 0; v < n; v++ {
			bestLab := labels[v]
			bestDelta := int64(0)
			// Candidate labels: neighbors' labels and a fresh singleton.
			cands := map[int]bool{nextLabel: true}
			g.ForEachNeighbor(v, func(u, _ int) {
				cands[labels[u]] = true
			})
			curScore := vertexScore(g, labels, v, labels[v])
			// Iterate candidates in sorted order: equal-delta ties must not
			// be broken by map iteration order, or the local optimum — and
			// everything downstream of it — flips between runs.
			labs := make([]int, 0, len(cands))
			for lab := range cands {
				labs = append(labs, lab)
			}
			sort.Ints(labs)
			for _, lab := range labs {
				if lab == labels[v] {
					continue
				}
				delta := vertexScore(g, labels, v, lab) - curScore
				if delta > bestDelta {
					bestDelta = delta
					bestLab = lab
				}
			}
			if bestLab != labels[v] {
				labels[v] = bestLab
				if bestLab == nextLabel {
					nextLabel++
				}
				improved = true
			}
		}
		if !improved {
			break
		}
	}
	return labels
}

// vertexScore returns v's contribution to the agreement objective when
// assigned label lab (its incident edges only).
func vertexScore(g *graph.Graph, labels []int, v, lab int) int64 {
	var s int64
	g.ForEachNeighbor(v, func(u, idx int) {
		same := labels[u] == lab
		if (same && g.Sign(idx) == 1) || (!same && g.Sign(idx) == -1) {
			s++
		}
	})
	return s
}

// positiveComponents labels vertices by connected components of the
// positive-edge subgraph.
func positiveComponents(g *graph.Graph) []int {
	n := g.N()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	for s := 0; s < n; s++ {
		if labels[s] != -1 {
			continue
		}
		labels[s] = next
		queue := []int{s}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.ForEachNeighbor(v, func(u, idx int) {
				if g.Sign(idx) == 1 && labels[u] == -1 {
					labels[u] = next
					queue = append(queue, u)
				}
			})
		}
		next++
	}
	return labels
}

// CorrelationClusteringPivot is the classic randomized pivot baseline
// (Ailon–Charikar–Newman style, restricted to graph edges): pick a random
// unclustered pivot, cluster it with its positive unclustered neighbors,
// repeat.
func CorrelationClusteringPivot(g *graph.Graph, rng *rand.Rand) []int {
	n := g.N()
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	order := rng.Perm(n)
	next := 0
	for _, p := range order {
		if labels[p] != -1 {
			continue
		}
		labels[p] = next
		g.ForEachNeighbor(p, func(u, idx int) {
			if g.Sign(idx) == 1 && labels[u] == -1 {
				labels[u] = next
			}
		})
		next++
	}
	return labels
}

// SingletonScore and OneClusterScore are the two trivial clusterings whose
// better alternative achieves γ(G) ≥ |E|/2 on connected graphs (§3.3).
func SingletonScore(g *graph.Graph) int64 {
	labels := make([]int, g.N())
	for i := range labels {
		labels[i] = i
	}
	return CorrelationScore(g, labels)
}

// OneClusterScore scores the all-in-one clustering.
func OneClusterScore(g *graph.Graph) int64 {
	return CorrelationScore(g, make([]int, g.N()))
}

// BestCorrelationClustering picks the exact solution for small graphs and
// the best of local search, pivot, singletons, and one-cluster otherwise.
func BestCorrelationClustering(g *graph.Graph, rng *rand.Rand) []int {
	if g.N() <= CorrClustExactLimit {
		return CorrelationClusteringExact(g)
	}
	best := CorrelationClusteringLocalSearch(g, 20)
	bestScore := CorrelationScore(g, best)
	cands := [][]int{
		CorrelationClusteringPivot(g, rng),
		singletonLabels(g.N()),
		make([]int, g.N()),
	}
	for _, c := range cands {
		if s := CorrelationScore(g, c); s > bestScore {
			best, bestScore = c, s
		}
	}
	return best
}

func singletonLabels(n int) []int {
	l := make([]int, n)
	for i := range l {
		l[i] = i
	}
	return l
}
