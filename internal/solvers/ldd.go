package solvers

import (
	"math/rand"
	"sort"

	"expandergap/internal/graph"
)

// LDDResult is a low-diameter decomposition (Theorem 1.5): a vertex
// partition with few inter-cluster edges and small per-cluster diameter.
type LDDResult struct {
	// Labels assigns each vertex a cluster label.
	Labels []int
	// CutEdges counts inter-cluster edges.
	CutEdges int
	// MaxDiameter is the largest induced-cluster diameter.
	MaxDiameter int
}

// LowDiameterDecomposition computes an (ε, D) low-diameter decomposition
// with D = O(1/ε) on minor-free graphs, using KPR-style iterated BFS
// chopping: `levels` rounds of partitioning every current piece into BFS
// bands of width Θ(1/ε) with a random offset. Each chopping round cuts an
// expected O(ε/levels) fraction of edges, and on an H-minor-free graph
// O(|H|) rounds leave pieces of diameter O(|H|²/ε) — the classical
// Klein–Plotkin–Rao argument that Theorem 1.5 sharpens. levels defaults to
// 3 when 0 (the planar/K5-free setting).
func LowDiameterDecomposition(g *graph.Graph, eps float64, levels int, rng *rand.Rand) LDDResult {
	n := g.N()
	if eps <= 0 {
		eps = 0.1
	}
	if eps > 1 {
		eps = 1
	}
	if levels <= 0 {
		levels = 3
	}
	width := int(float64(levels)/eps) + 1
	labels := make([]int, n)
	pieces := [][]int{}
	if n > 0 {
		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		pieces = append(pieces, all)
	}
	for round := 0; round < levels; round++ {
		var next [][]int
		for _, piece := range pieces {
			next = append(next, chopPiece(g, piece, width, rng)...)
		}
		pieces = next
	}
	for id, piece := range pieces {
		for _, v := range piece {
			labels[v] = id
		}
	}
	res := LDDResult{Labels: labels}
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if labels[e.U] != labels[e.V] {
			res.CutEdges++
		}
	}
	for _, piece := range pieces {
		sub := g.Induce(piece)
		if d := sub.Diameter(); d > res.MaxDiameter {
			res.MaxDiameter = d
		}
	}
	return res
}

// BallCarving is the classic deterministic low-diameter decomposition:
// repeatedly take the smallest unassigned vertex and grow a BFS ball,
// increasing the radius while the boundary is large — stopping at the first
// radius where the edges leaving the ball number at most eps times the
// edges inside it. Each carve's cut charges to its disjoint interior, so
// the total cut is at most ε·|E|, and the radius argument bounds each
// ball's diameter by O(log m / ε) — the inverse-polynomial dependence that
// Theorem 1.5 improves to O(1/ε) on minor-free graphs. It serves as the
// deterministic baseline for E10-style comparisons.
func BallCarving(g *graph.Graph, eps float64) LDDResult {
	n := g.N()
	if eps <= 0 {
		eps = 0.1
	}
	labels := make([]int, n)
	for i := range labels {
		labels[i] = -1
	}
	next := 0
	for root := 0; root < n; root++ {
		if labels[root] != -1 {
			continue
		}
		// Grow the ball level by level over unassigned vertices.
		ball := map[int]bool{root: true}
		frontier := []int{root}
		for {
			internal, crossing := 0, 0
			for v := range ball {
				g.ForEachNeighbor(v, func(u, _ int) {
					if labels[u] != -1 {
						return // edges to earlier balls were already charged
					}
					if ball[u] {
						internal++ // counted twice
					} else {
						crossing++
					}
				})
			}
			if float64(crossing) <= eps*float64(internal/2)+eps {
				break
			}
			var nextFrontier []int
			for _, v := range frontier {
				g.ForEachNeighbor(v, func(u, _ int) {
					if labels[u] == -1 && !ball[u] {
						ball[u] = true
						nextFrontier = append(nextFrontier, u)
					}
				})
			}
			if len(nextFrontier) == 0 {
				break
			}
			frontier = nextFrontier
		}
		for v := range ball {
			labels[v] = next
		}
		next++
	}
	res := LDDResult{Labels: labels}
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		if labels[e.U] != labels[e.V] {
			res.CutEdges++
		}
	}
	groups := make(map[int][]int)
	for v, l := range labels {
		groups[l] = append(groups[l], v)
	}
	for _, members := range groups {
		sub := g.Induce(members)
		if d := sub.Diameter(); d > res.MaxDiameter {
			res.MaxDiameter = d
		}
	}
	return res
}

// chopPiece BFS-chops one piece into bands of the given width with a random
// offset, then splits each band into its connected components (pieces must
// stay connected to keep diameters meaningful).
func chopPiece(g *graph.Graph, piece []int, width int, rng *rand.Rand) [][]int {
	if len(piece) <= 1 {
		return [][]int{piece}
	}
	in := make(map[int]bool, len(piece))
	for _, v := range piece {
		in[v] = true
	}
	// BFS from the first vertex, restricted to the piece; separate
	// connected parts handled by restarting.
	dist := make(map[int]int, len(piece))
	var comps [][]int
	for _, root := range piece {
		if _, seen := dist[root]; seen {
			continue
		}
		dist[root] = 0
		queue := []int{root}
		order := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.ForEachNeighbor(v, func(u, _ int) {
				if !in[u] {
					return
				}
				if _, seen := dist[u]; !seen {
					dist[u] = dist[v] + 1
					queue = append(queue, u)
					order = append(order, u)
				}
			})
		}
		comps = append(comps, order)
	}
	offset := rng.Intn(width)
	var out [][]int
	for _, comp := range comps {
		// Band index per vertex.
		bands := make(map[int][]int)
		for _, v := range comp {
			b := (dist[v] + offset) / width
			bands[b] = append(bands[b], v)
		}
		// Emit bands in ascending index order: the piece order feeds the
		// next chopping round's rng draws, so map-iteration order here
		// would make the whole decomposition nondeterministic.
		idx := make([]int, 0, len(bands))
		for b := range bands {
			idx = append(idx, b)
		}
		sort.Ints(idx)
		for _, b := range idx {
			// Split each band into connected components.
			out = append(out, connectedParts(g, bands[b])...)
		}
	}
	return out
}

// connectedParts splits a vertex set into connected components of its
// induced subgraph, returning original vertex IDs.
func connectedParts(g *graph.Graph, members []int) [][]int {
	in := make(map[int]bool, len(members))
	for _, v := range members {
		in[v] = true
	}
	seen := make(map[int]bool, len(members))
	var parts [][]int
	for _, root := range members {
		if seen[root] {
			continue
		}
		seen[root] = true
		queue := []int{root}
		part := []int{root}
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			g.ForEachNeighbor(v, func(u, _ int) {
				if in[u] && !seen[u] {
					seen[u] = true
					queue = append(queue, u)
					part = append(part, u)
				}
			})
		}
		parts = append(parts, part)
	}
	return parts
}
