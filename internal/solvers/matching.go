package solvers

import (
	"expandergap/internal/graph"
)

// MaximumMatching returns a maximum cardinality matching of g as a mate
// slice: mate[v] is v's partner, or -1. It implements Edmonds' blossom
// algorithm (O(V³)): repeatedly grow alternating BFS forests, contracting
// odd cycles (blossoms) at their base, until no augmenting path remains.
func MaximumMatching(g *graph.Graph) []int {
	n := g.N()
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	p := make([]int, n)    // BFS parent in the alternating tree
	base := make([]int, n) // blossom base of each vertex
	used := make([]bool, n)
	blossom := make([]bool, n)

	lca := func(a, b int) int {
		usedPath := make(map[int]bool)
		for {
			a = base[a]
			usedPath[a] = true
			if mate[a] == -1 {
				break
			}
			a = p[mate[a]]
		}
		for {
			b = base[b]
			if usedPath[b] {
				return b
			}
			b = p[mate[b]]
		}
	}

	var queue []int
	markPath := func(v, b, child int) {
		for base[v] != b {
			blossom[base[v]] = true
			blossom[base[mate[v]]] = true
			p[v] = child
			child = mate[v]
			v = p[mate[v]]
		}
	}

	findPath := func(root int) int {
		for i := range used {
			used[i] = false
			p[i] = -1
			base[i] = i
		}
		used[root] = true
		queue = queue[:0]
		queue = append(queue, root)
		for len(queue) > 0 {
			v := queue[0]
			queue = queue[1:]
			for ni, deg := 0, g.Degree(v); ni < deg; ni++ {
				to := g.NeighborAt(v, ni)
				if base[v] == base[to] || mate[v] == to {
					continue
				}
				if to == root || (mate[to] != -1 && p[mate[to]] != -1) {
					// Odd cycle: contract the blossom.
					curBase := lca(v, to)
					for i := range blossom {
						blossom[i] = false
					}
					markPath(v, curBase, to)
					markPath(to, curBase, v)
					for i := 0; i < len(base); i++ {
						if blossom[base[i]] {
							base[i] = curBase
							if !used[i] {
								used[i] = true
								queue = append(queue, i)
							}
						}
					}
				} else if p[to] == -1 {
					p[to] = v
					if mate[to] == -1 {
						return to // augmenting path found
					}
					used[mate[to]] = true
					queue = append(queue, mate[to])
				}
			}
		}
		return -1
	}

	for v := 0; v < n; v++ {
		if mate[v] != -1 {
			continue
		}
		end := findPath(v)
		if end == -1 {
			continue
		}
		// Augment along the path ending at end.
		for end != -1 {
			pv := p[end]
			ppv := mate[pv]
			mate[end] = pv
			mate[pv] = end
			end = ppv
		}
	}
	return mate
}

// MatchingSize returns the number of matched pairs in a mate slice.
func MatchingSize(mate []int) int {
	c := 0
	for v, m := range mate {
		if m > v {
			c++
		}
	}
	return c
}

// MatchingWeight returns the total weight of the matching in g.
func MatchingWeight(g *graph.Graph, mate []int) int64 {
	var total int64
	for v, m := range mate {
		if m > v {
			if idx, ok := g.EdgeIndex(v, m); ok {
				total += g.Weight(idx)
			}
		}
	}
	return total
}

// IsMatching reports whether mate is a consistent matching of g.
func IsMatching(g *graph.Graph, mate []int) bool {
	if len(mate) != g.N() {
		return false
	}
	for v, m := range mate {
		if m == -1 {
			continue
		}
		if m < 0 || m >= g.N() || mate[m] != v || m == v {
			return false
		}
		if !g.HasEdge(v, m) {
			return false
		}
	}
	return true
}

// GreedyMatching returns the maximal matching obtained by scanning edges in
// descending weight order (index order for unweighted graphs): the classic
// ½-approximation for MCM and MWM.
func GreedyMatching(g *graph.Graph) []int {
	type we struct {
		idx int
		w   int64
	}
	order := make([]we, g.M())
	for i := 0; i < g.M(); i++ {
		order[i] = we{idx: i, w: g.Weight(i)}
	}
	// Stable sort by descending weight (insertion into buckets would be
	// overkill; simple sort).
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j-1].w < order[j].w; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	mate := make([]int, g.N())
	for i := range mate {
		mate[i] = -1
	}
	for _, o := range order {
		e := g.EdgeAt(o.idx)
		if mate[e.U] == -1 && mate[e.V] == -1 {
			mate[e.U] = e.V
			mate[e.V] = e.U
		}
	}
	return mate
}

// MWMExactLimit bounds the exact maximum-weight-matching search (edges).
const MWMExactLimit = 64

// MaximumWeightMatching returns an exact maximum weight matching by branch
// and bound over edges in descending weight order, with the admissible bound
// "current weight + sum of remaining candidate edge weights that could still
// fit". Intended for cluster-sized graphs (≤ MWMExactLimit edges); panics
// above the limit.
func MaximumWeightMatching(g *graph.Graph) []int {
	if g.M() > MWMExactLimit {
		panic("solvers: MaximumWeightMatching limited to 64 edges; use ScalingMWM")
	}
	n := g.N()
	type we struct {
		idx int
		w   int64
	}
	order := make([]we, g.M())
	for i := range order {
		order[i] = we{idx: i, w: g.Weight(i)}
	}
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j-1].w < order[j].w; j-- {
			order[j-1], order[j] = order[j], order[j-1]
		}
	}
	suffix := make([]int64, len(order)+1)
	for i := len(order) - 1; i >= 0; i-- {
		suffix[i] = suffix[i+1] + order[i].w
	}
	mate := make([]int, n)
	best := make([]int, n)
	for i := range mate {
		mate[i] = -1
		best[i] = -1
	}
	var bestW int64 = -1
	var cur int64
	var rec func(i int)
	rec = func(i int) {
		if cur > bestW {
			bestW = cur
			copy(best, mate)
		}
		if i >= len(order) || cur+suffix[i] <= bestW {
			return
		}
		e := g.EdgeAt(order[i].idx)
		if mate[e.U] == -1 && mate[e.V] == -1 {
			mate[e.U], mate[e.V] = e.V, e.U
			cur += order[i].w
			rec(i + 1)
			cur -= order[i].w
			mate[e.U], mate[e.V] = -1, -1
		}
		rec(i + 1)
	}
	rec(0)
	return best
}

// ScalingMWM computes a (1-ε)-approximate maximum weight matching with the
// weight-bucketing technique at the heart of scaling algorithms such as
// Duan–Pettie: round each weight down to the nearest power of (1+ε), then
// run exact maximum-cardinality-style augmentation greedily from the heaviest
// bucket downward (greedy per bucket, blossom-free). The result is a
// maximal matching whose weight is at least (1-ε)/2 · OPT in general, and in
// practice much closer; the framework uses it only as the large-cluster
// fallback (small clusters get the exact solver).
func ScalingMWM(g *graph.Graph, eps float64) []int {
	if eps <= 0 {
		eps = 0.1
	}
	n := g.N()
	mate := make([]int, n)
	for i := range mate {
		mate[i] = -1
	}
	if g.M() == 0 {
		return mate
	}
	// Bucket edges by floor(log_{1+eps} w).
	type bucketEdge struct {
		idx    int
		bucket int
	}
	edges := make([]bucketEdge, g.M())
	maxBucket := 0
	for i := 0; i < g.M(); i++ {
		b := 0
		w := float64(g.Weight(i))
		scale := 1.0
		for scale*(1+eps) <= w {
			scale *= 1 + eps
			b++
		}
		edges[i] = bucketEdge{idx: i, bucket: b}
		if b > maxBucket {
			maxBucket = b
		}
	}
	for b := maxBucket; b >= 0; b-- {
		for _, be := range edges {
			if be.bucket != b {
				continue
			}
			e := g.EdgeAt(be.idx)
			if mate[e.U] == -1 && mate[e.V] == -1 {
				mate[e.U], mate[e.V] = e.V, e.U
			}
		}
	}
	return mate
}
