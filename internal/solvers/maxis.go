// Package solvers provides the sequential algorithms cluster leaders run on
// gathered topologies (the "solve locally" step of Theorem 2.6), plus the
// sequential baselines and subroutines the applications need: exact maximum
// independent set, exact maximum cardinality matching (Edmonds' blossom
// algorithm), exact maximum weight matching (branch and bound), exact and
// local-search correlation clustering, and the sequential low-diameter
// decomposition used by Theorem 1.5.
//
// Exact solvers are exponential in the worst case but run on cluster-sized
// inputs; each has a documented practical size limit and a greedy fallback.
package solvers

import (
	"math/bits"

	"expandergap/internal/graph"
)

// MaxISExactLimit is the largest vertex count MaximumIndependentSet accepts.
const MaxISExactLimit = 64

// MaximumIndependentSet returns a maximum independent set of g, exactly,
// using branch and bound on the highest-degree vertex with component
// splitting. Intended for cluster-sized graphs (n ≤ MaxISExactLimit; sparse
// instances far larger run fine). Panics above the limit.
func MaximumIndependentSet(g *graph.Graph) []int {
	if g.N() > MaxISExactLimit {
		panic("solvers: MaximumIndependentSet limited to 64 vertices; use GreedyIndependentSet")
	}
	if g.N() == 0 {
		return nil
	}
	adj := make([]uint64, g.N())
	for _, e := range g.Edges() {
		adj[e.U] |= 1 << uint(e.V)
		adj[e.V] |= 1 << uint(e.U)
	}
	full := uint64(1)<<uint(g.N()) - 1
	memo := make(map[uint64]uint64)
	best := misRec(adj, full, memo)
	var out []int
	for v := 0; v < g.N(); v++ {
		if best&(1<<uint(v)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

// misRec returns a maximum independent set of the subgraph induced by mask,
// as a bitmask.
func misRec(adj []uint64, mask uint64, memo map[uint64]uint64) uint64 {
	if mask == 0 {
		return 0
	}
	if s, ok := memo[mask]; ok {
		return s
	}
	// Find a vertex in mask; prefer max degree within mask, and shortcut
	// degree-0 and degree-1 vertices (always take them).
	var pick, maxDeg = -1, -1
	m := mask
	for m != 0 {
		v := bits.TrailingZeros64(m)
		m &= m - 1
		d := bits.OnesCount64(adj[v] & mask)
		if d == 0 {
			// Isolated in the remainder: always in the solution.
			rest := misRec(adj, mask&^(1<<uint(v)), memo)
			res := rest | 1<<uint(v)
			memo[mask] = res
			return res
		}
		if d > maxDeg {
			maxDeg, pick = d, v
		}
	}
	v := uint(pick)
	if maxDeg == 1 {
		// Take v's single neighbor... taking v itself is always optimal for
		// a degree-1 vertex.
		nb := adj[pick] & mask
		rest := misRec(adj, mask&^(1<<v)&^nb, memo)
		res := rest | 1<<v
		memo[mask] = res
		return res
	}
	// Branch: exclude v / include v.
	without := misRec(adj, mask&^(1<<v), memo)
	with := misRec(adj, mask&^(1<<v)&^(adj[pick]&mask), memo) | 1<<v
	res := without
	if bits.OnesCount64(with) > bits.OnesCount64(without) {
		res = with
	}
	memo[mask] = res
	return res
}

// GreedyIndependentSet returns the minimum-degree greedy independent set:
// repeatedly take a minimum-degree vertex and delete its closed
// neighborhood. For a graph of edge density d this guarantees at least
// n/(2d+1) vertices — the bound §3.1 of the paper uses to show
// α(G) = Θ(n) on H-minor-free graphs.
func GreedyIndependentSet(g *graph.Graph) []int {
	n := g.N()
	alive := make([]bool, n)
	deg := make([]int, n)
	for v := 0; v < n; v++ {
		alive[v] = true
		deg[v] = g.Degree(v)
	}
	remaining := n
	var out []int
	for remaining > 0 {
		// Min-degree alive vertex.
		pick, pickDeg := -1, 1<<30
		for v := 0; v < n; v++ {
			if alive[v] && deg[v] < pickDeg {
				pick, pickDeg = v, deg[v]
			}
		}
		out = append(out, pick)
		kill := []int{pick}
		g.ForEachNeighbor(pick, func(u, _ int) {
			if alive[u] {
				kill = append(kill, u)
			}
		})
		for _, v := range kill {
			alive[v] = false
			remaining--
			g.ForEachNeighbor(v, func(u, _ int) {
				if alive[u] {
					deg[u]--
				}
			})
		}
	}
	return out
}

// IsIndependentSet reports whether set is independent in g.
func IsIndependentSet(g *graph.Graph, set []int) bool {
	in := make(map[int]bool, len(set))
	for _, v := range set {
		if in[v] {
			return false
		}
		in[v] = true
	}
	for _, e := range g.Edges() {
		if in[e.U] && in[e.V] {
			return false
		}
	}
	return true
}

// WeightedMaxISLimit bounds the exact weighted independent-set search.
const WeightedMaxISLimit = 64

// MaximumWeightIndependentSet returns a maximum-weight independent set for
// vertex weights w (all non-negative), exactly, by the same branch and
// bound. Used by the weighted MaxIS extension of §3.1.
func MaximumWeightIndependentSet(g *graph.Graph, w []int64) []int {
	if g.N() > WeightedMaxISLimit {
		panic("solvers: MaximumWeightIndependentSet limited to 64 vertices")
	}
	if g.N() == 0 {
		return nil
	}
	adj := make([]uint64, g.N())
	for _, e := range g.Edges() {
		adj[e.U] |= 1 << uint(e.V)
		adj[e.V] |= 1 << uint(e.U)
	}
	full := uint64(1)<<uint(g.N()) - 1
	memo := make(map[uint64]uint64)
	best := wmisRec(adj, w, full, memo)
	var out []int
	for v := 0; v < g.N(); v++ {
		if best&(1<<uint(v)) != 0 {
			out = append(out, v)
		}
	}
	return out
}

func setWeight(w []int64, set uint64) int64 {
	var total int64
	for set != 0 {
		v := bits.TrailingZeros64(set)
		set &= set - 1
		total += w[v]
	}
	return total
}

func wmisRec(adj []uint64, w []int64, mask uint64, memo map[uint64]uint64) uint64 {
	if mask == 0 {
		return 0
	}
	if s, ok := memo[mask]; ok {
		return s
	}
	pick, maxDeg := -1, -1
	m := mask
	for m != 0 {
		v := bits.TrailingZeros64(m)
		m &= m - 1
		d := bits.OnesCount64(adj[v] & mask)
		if d > maxDeg {
			maxDeg, pick = d, v
		}
	}
	v := uint(pick)
	without := wmisRec(adj, w, mask&^(1<<v), memo)
	with := wmisRec(adj, w, mask&^(1<<v)&^(adj[pick]&mask), memo) | 1<<v
	res := without
	if setWeight(w, with) > setWeight(w, without) {
		res = with
	}
	memo[mask] = res
	return res
}
