package solvers

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestMaximumIndependentSetKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"K5", graph.Complete(5), 1},
		{"C5", graph.Cycle(5), 2},
		{"C6", graph.Cycle(6), 3},
		{"P7", graph.Path(7), 4},
		{"star", graph.Star(6), 6},
		{"K33", graph.CompleteBipartite(3, 3), 3},
		{"grid3x3", graph.Grid(3, 3), 5},
		{"empty", graph.NewBuilder(4).Graph(), 4},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := MaximumIndependentSet(tc.g)
			if !IsIndependentSet(tc.g, set) {
				t.Fatal("result not independent")
			}
			if len(set) != tc.want {
				t.Errorf("|MIS| = %d, want %d", len(set), tc.want)
			}
		})
	}
}

func TestMaximumIndependentSetPanicsAboveLimit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic above limit")
		}
	}()
	MaximumIndependentSet(graph.Path(MaxISExactLimit + 1))
}

func TestGreedyIndependentSetBound(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, n := range []int{20, 50, 120} {
		g := graph.RandomMaximalPlanar(n, rng)
		set := GreedyIndependentSet(g)
		if !IsIndependentSet(g, set) {
			t.Fatal("greedy result not independent")
		}
		// Planar density < 3, so the guarantee is n/(2*3+1) = n/7.
		if len(set)*7 < n {
			t.Errorf("greedy IS on planar n=%d has size %d < n/7", n, len(set))
		}
	}
}

// Property: exact MIS is at least as large as greedy on small random graphs.
func TestQuickExactBeatsGreedy(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(14)
		g := graph.ErdosRenyi(n, 0.3, rng)
		exact := MaximumIndependentSet(g)
		greedy := GreedyIndependentSet(g)
		return IsIndependentSet(g, exact) && IsIndependentSet(g, greedy) &&
			len(exact) >= len(greedy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaximumWeightIndependentSet(t *testing.T) {
	// Path a-b-c with weights 1, 5, 1: best is {b} (5) not {a,c} (2).
	g := graph.Path(3)
	set := MaximumWeightIndependentSet(g, []int64{1, 5, 1})
	if len(set) != 1 || set[0] != 1 {
		t.Errorf("WMIS = %v, want [1]", set)
	}
	// Equal weights reduce to cardinality.
	g2 := graph.Cycle(6)
	set2 := MaximumWeightIndependentSet(g2, []int64{1, 1, 1, 1, 1, 1})
	if len(set2) != 3 {
		t.Errorf("uniform WMIS size = %d, want 3", len(set2))
	}
}

func TestMaximumMatchingKnown(t *testing.T) {
	cases := []struct {
		name string
		g    *graph.Graph
		want int
	}{
		{"P4", graph.Path(4), 2},
		{"P5", graph.Path(5), 2},
		{"C5", graph.Cycle(5), 2},
		{"C6", graph.Cycle(6), 3},
		{"K4", graph.Complete(4), 2},
		{"K5", graph.Complete(5), 2},
		{"star", graph.Star(5), 1},
		{"K33", graph.CompleteBipartite(3, 3), 3},
		{"petersen", petersen(), 5},
		{"grid4x4", graph.Grid(4, 4), 8},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			mate := MaximumMatching(tc.g)
			if !IsMatching(tc.g, mate) {
				t.Fatal("not a matching")
			}
			if got := MatchingSize(mate); got != tc.want {
				t.Errorf("|MCM| = %d, want %d", got, tc.want)
			}
		})
	}
}

// petersen builds the Petersen graph, a classic blossom stress test (odd
// cycles everywhere, perfect matching exists).
func petersen() *graph.Graph {
	b := graph.NewBuilder(10)
	for i := 0; i < 5; i++ {
		b.AddEdge(i, (i+1)%5)     // outer C5
		b.AddEdge(5+i, 5+(i+2)%5) // inner pentagram
		b.AddEdge(i, 5+i)         // spokes
	}
	return b.Graph()
}

// Property: blossom matching is maximal and no augmenting structure of
// length 1 or 3 exists (sanity), and it matches the greedy lower bound.
func TestQuickBlossomSanity(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(20)
		g := graph.ErdosRenyi(n, 0.3, rng)
		mate := MaximumMatching(g)
		if !IsMatching(g, mate) {
			return false
		}
		// Maximality: no edge with two free endpoints.
		for _, e := range g.Edges() {
			if mate[e.U] == -1 && mate[e.V] == -1 {
				return false
			}
		}
		greedy := GreedyMatching(g)
		return MatchingSize(mate) >= MatchingSize(greedy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Cross-validate blossom against the exact weighted solver with unit
// weights on small graphs.
func TestQuickBlossomVsExactUnitWeights(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		g := graph.ErdosRenyi(n, 0.4, rng)
		if g.M() > MWMExactLimit {
			return true
		}
		blossom := MatchingSize(MaximumMatching(g))
		exact := MatchingSize(MaximumWeightMatching(g))
		return blossom == exact
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestMaximumWeightMatchingKnown(t *testing.T) {
	// Path with weights 1-10-1: take the middle edge only.
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 10)
	b.AddWeightedEdge(2, 3, 1)
	g := b.Graph()
	mate := MaximumWeightMatching(g)
	if w := MatchingWeight(g, mate); w != 10 {
		t.Errorf("MWM weight = %d, want 10", w)
	}
	// Triangle with weights 5,4,3: best single edge 5.
	b2 := graph.NewBuilder(3)
	b2.AddWeightedEdge(0, 1, 5)
	b2.AddWeightedEdge(1, 2, 4)
	b2.AddWeightedEdge(0, 2, 3)
	g2 := b2.Graph()
	if w := MatchingWeight(g2, MaximumWeightMatching(g2)); w != 5 {
		t.Errorf("triangle MWM = %d, want 5", w)
	}
	// Square where two light opposite edges beat one heavy: 3+3 > 5.
	b3 := graph.NewBuilder(4)
	b3.AddWeightedEdge(0, 1, 5)
	b3.AddWeightedEdge(1, 2, 3)
	b3.AddWeightedEdge(2, 3, 5)
	b3.AddWeightedEdge(3, 0, 3)
	g3 := b3.Graph()
	if w := MatchingWeight(g3, MaximumWeightMatching(g3)); w != 10 {
		t.Errorf("square MWM = %d, want 10", w)
	}
}

func TestGreedyMatchingHalfApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 20; trial++ {
		g := graph.WithRandomWeights(graph.ErdosRenyi(10, 0.4, rng), 50, rng)
		if g.M() > MWMExactLimit {
			continue
		}
		opt := MatchingWeight(g, MaximumWeightMatching(g))
		grd := MatchingWeight(g, GreedyMatching(g))
		if 2*grd < opt {
			t.Errorf("greedy %d below half of optimal %d", grd, opt)
		}
	}
}

func TestScalingMWMQuality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 10; trial++ {
		g := graph.WithRandomWeights(graph.ErdosRenyi(9, 0.5, rng), 100, rng)
		if g.M() > MWMExactLimit {
			continue
		}
		opt := MatchingWeight(g, MaximumWeightMatching(g))
		scaled := ScalingMWM(g, 0.1)
		if !IsMatching(g, scaled) {
			t.Fatal("scaling result not a matching")
		}
		got := MatchingWeight(g, scaled)
		if 2*got < opt-1 {
			t.Errorf("scaling MWM %d below half of optimal %d", got, opt)
		}
	}
}

func TestCorrelationScore(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddSignedEdge(0, 1, 1)
	b.AddSignedEdge(1, 2, -1)
	b.AddSignedEdge(0, 2, -1)
	g := b.Graph()
	// {0,1} together, {2} apart: +edge agrees, both -edges agree: 3.
	if s := CorrelationScore(g, []int{0, 0, 1}); s != 3 {
		t.Errorf("score = %d, want 3", s)
	}
	// All together: only the + edge agrees: 1.
	if s := CorrelationScore(g, []int{0, 0, 0}); s != 1 {
		t.Errorf("score = %d, want 1", s)
	}
}

func TestCorrelationClusteringExactOptimal(t *testing.T) {
	b := graph.NewBuilder(3)
	b.AddSignedEdge(0, 1, 1)
	b.AddSignedEdge(1, 2, -1)
	b.AddSignedEdge(0, 2, -1)
	g := b.Graph()
	labels := CorrelationClusteringExact(g)
	if s := CorrelationScore(g, labels); s != 3 {
		t.Errorf("exact score = %d, want 3", s)
	}
}

func TestCorrelationClusteringExactRecoversPlanted(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	g, blocks := graph.WithPlantedSigns(graph.Complete(9), 3, 0, rng)
	labels := CorrelationClusteringExact(g)
	// Noise-free planting: optimal score equals total edges; the planted
	// partition is optimal.
	if got, want := CorrelationScore(g, labels), CorrelationScore(g, blocks); got != want {
		t.Errorf("exact %d != planted %d", got, want)
	}
	if CorrelationScore(g, labels) != int64(g.M()) {
		t.Errorf("noise-free optimum should score all %d edges", g.M())
	}
}

// Property: exact >= local search >= min(singletons, one-cluster) and the
// §3.3 bound γ(G) >= |E|/2 holds on connected graphs.
func TestQuickCorrClustBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 3 + rng.Intn(8)
		g := graph.WithRandomSigns(graph.RandomMaximalPlanar(max(n, 3), rng), 0.5, rng)
		exact := CorrelationScore(g, CorrelationClusteringExact(g))
		ls := CorrelationScore(g, CorrelationClusteringLocalSearch(g, 10))
		if exact < ls {
			return false
		}
		if 2*exact < int64(g.M()) {
			return false // γ(G) ≥ |E|/2 must hold
		}
		triv := SingletonScore(g)
		if oc := OneClusterScore(g); oc > triv {
			triv = oc
		}
		return exact >= triv && ls >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestBestCorrelationClusteringDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	small := graph.WithRandomSigns(graph.Cycle(6), 0.5, rng)
	big := graph.WithRandomSigns(graph.RandomMaximalPlanar(40, rng), 0.6, rng)
	for _, g := range []*graph.Graph{small, big} {
		labels := BestCorrelationClustering(g, rng)
		if len(labels) != g.N() {
			t.Fatalf("labels length %d, want %d", len(labels), g.N())
		}
		if 2*CorrelationScore(g, labels) < int64(g.M()) {
			t.Errorf("clustering below the |E|/2 guarantee")
		}
	}
}

func TestPivotIsValidClustering(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	g := graph.WithRandomSigns(graph.Grid(5, 5), 0.5, rng)
	labels := CorrelationClusteringPivot(g, rng)
	for v, l := range labels {
		if l < 0 {
			t.Errorf("vertex %d unlabeled", v)
		}
	}
}

func TestLowDiameterDecompositionGuarantees(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	g := graph.Grid(12, 12)
	for _, eps := range []float64{0.2, 0.4} {
		res := LowDiameterDecomposition(g, eps, 3, rng)
		if res.MaxDiameter > int(12.0/eps) {
			t.Errorf("eps=%v: diameter %d exceeds O(1/eps) bound", eps, res.MaxDiameter)
		}
		// Clusters must be connected (diameter computed on induced pieces).
		seen := map[int]bool{}
		for _, l := range res.Labels {
			seen[l] = true
		}
		if len(seen) < 2 {
			t.Errorf("eps=%v: decomposition did not split a 12x12 grid", eps)
		}
	}
}

func TestLDDCutScalesWithEps(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	g := graph.Grid(16, 16)
	avg := func(eps float64) float64 {
		total := 0
		const trials = 5
		for i := 0; i < trials; i++ {
			total += LowDiameterDecomposition(g, eps, 3, rng).CutEdges
		}
		return float64(total) / trials
	}
	loose, tight := avg(0.6), avg(0.1)
	if tight >= loose {
		t.Errorf("cut should shrink with eps: eps=0.1 gives %v, eps=0.6 gives %v", tight, loose)
	}
}

func TestLDDDegenerate(t *testing.T) {
	empty := graph.NewBuilder(0).Graph()
	rng := rand.New(rand.NewSource(1))
	res := LowDiameterDecomposition(empty, 0.5, 0, rng)
	if len(res.Labels) != 0 || res.CutEdges != 0 {
		t.Error("empty LDD wrong")
	}
	single := graph.Path(1)
	res = LowDiameterDecomposition(single, -1, 0, rng) // eps sanitized
	if len(res.Labels) != 1 {
		t.Error("singleton LDD wrong")
	}
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
