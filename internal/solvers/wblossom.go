package solvers

import (
	"fmt"

	"expandergap/internal/graph"
)

// WeightedBlossomLimit bounds the O(n³) weighted blossom solver (memory is
// Θ(n²); the framework's clusters stay far below this).
const WeightedBlossomLimit = 256

// WeightedBlossom computes an exact maximum weight matching of g using the
// classic O(n³) primal-dual blossom algorithm with lazy dual adjustment
// (Galil's formulation, in the compact form widely used in practice).
// Weights are doubled internally so all dual values stay integral. The
// matching maximizes total weight and need not be perfect or maximum in
// cardinality. Panics when g has more than WeightedBlossomLimit vertices.
func WeightedBlossom(g *graph.Graph) []int {
	if g.N() > WeightedBlossomLimit {
		panic(fmt.Sprintf("solvers: WeightedBlossom limited to %d vertices", WeightedBlossomLimit))
	}
	n := g.N()
	if n == 0 {
		return nil
	}
	w := newWB(n)
	for i := 0; i < g.M(); i++ {
		e := g.EdgeAt(i)
		w.setEdge(e.U+1, e.V+1, g.Weight(i))
	}
	w.solve()
	mate := make([]int, n)
	for v := 1; v <= n; v++ {
		mate[v-1] = w.match[v] - 1
	}
	return mate
}

const wbInf = int64(1) << 62

type wbEdge struct {
	u, v int
	w    int64
}

// wb is the solver state. Vertices are 1..n; blossom nodes are n+1..nx.
type wb struct {
	n, nx      int
	g          [][]wbEdge
	lab        []int64
	match      []int
	slack      []int
	st         []int
	pa         []int
	flowerFrom [][]int
	s          []int
	vis        []int
	flower     [][]int
	q          []int
	visToken   int
}

func newWB(n int) *wb {
	size := 2*n + 1
	w := &wb{n: n}
	w.g = make([][]wbEdge, size)
	for u := 0; u < size; u++ {
		w.g[u] = make([]wbEdge, size)
		for v := 0; v < size; v++ {
			w.g[u][v] = wbEdge{u: u, v: v}
		}
	}
	w.lab = make([]int64, size)
	w.match = make([]int, size)
	w.slack = make([]int, size)
	w.st = make([]int, size)
	w.pa = make([]int, size)
	w.s = make([]int, size)
	w.vis = make([]int, size)
	w.flower = make([][]int, size)
	w.flowerFrom = make([][]int, size)
	for u := 0; u < size; u++ {
		w.flowerFrom[u] = make([]int, n+1)
	}
	return w
}

func (w *wb) setEdge(u, v int, weight int64) {
	// Doubled weights keep every dual delta integral.
	w.g[u][v].w = weight * 2
	w.g[v][u].w = weight * 2
}

func (w *wb) eDelta(e wbEdge) int64 {
	return w.lab[e.u] + w.lab[e.v] - w.g[e.u][e.v].w
}

func (w *wb) updateSlack(u, x int) {
	if w.slack[x] == 0 || w.eDelta(w.g[u][x]) < w.eDelta(w.g[w.slack[x]][x]) {
		w.slack[x] = u
	}
}

func (w *wb) setSlack(x int) {
	w.slack[x] = 0
	for u := 1; u <= w.n; u++ {
		if w.g[u][x].w > 0 && w.st[u] != x && w.s[w.st[u]] == 0 {
			w.updateSlack(u, x)
		}
	}
}

func (w *wb) qPush(x int) {
	if x <= w.n {
		w.q = append(w.q, x)
		return
	}
	for _, p := range w.flower[x] {
		w.qPush(p)
	}
}

func (w *wb) setSt(x, b int) {
	w.st[x] = b
	if x > w.n {
		for _, p := range w.flower[x] {
			w.setSt(p, b)
		}
	}
}

// getPr finds xr's position inside blossom b's cycle, reversing the cycle
// orientation when the position is odd so the alternating structure is
// preserved.
func (w *wb) getPr(b, xr int) int {
	pr := 0
	for i, x := range w.flower[b] {
		if x == xr {
			pr = i
			break
		}
	}
	if pr%2 == 1 {
		rev := w.flower[b][1:]
		for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
			rev[i], rev[j] = rev[j], rev[i]
		}
		return len(w.flower[b]) - pr
	}
	return pr
}

func (w *wb) setMatch(u, v int) {
	w.match[u] = w.g[u][v].v
	if u <= w.n {
		return
	}
	e := w.g[u][v]
	xr := w.flowerFrom[u][e.u]
	pr := w.getPr(u, xr)
	for i := 0; i < pr; i++ {
		w.setMatch(w.flower[u][i], w.flower[u][i^1])
	}
	w.setMatch(xr, v)
	// rotate flower[u] left by pr
	f := w.flower[u]
	rotated := append(append([]int(nil), f[pr:]...), f[:pr]...)
	w.flower[u] = rotated
}

func (w *wb) augment(u, v int) {
	for {
		xnv := w.st[w.match[u]]
		w.setMatch(u, v)
		if xnv == 0 {
			return
		}
		w.setMatch(xnv, w.st[w.pa[xnv]])
		u = w.st[w.pa[xnv]]
		v = xnv
	}
}

func (w *wb) getLCA(u, v int) int {
	w.visToken++
	t := w.visToken
	for u != 0 || v != 0 {
		if u != 0 {
			if w.vis[u] == t {
				return u
			}
			w.vis[u] = t
			u = w.st[w.match[u]]
			if u != 0 {
				u = w.st[w.pa[u]]
			}
		}
		u, v = v, u
	}
	return 0
}

func (w *wb) addBlossom(u, lca, v int) {
	b := w.n + 1
	for b <= w.nx && w.st[b] != 0 {
		b++
	}
	if b > w.nx {
		w.nx++
	}
	w.lab[b] = 0
	w.s[b] = 0
	w.match[b] = w.match[lca]
	w.flower[b] = w.flower[b][:0]
	w.flower[b] = append(w.flower[b], lca)
	for x := u; x != lca; {
		w.flower[b] = append(w.flower[b], x)
		y := w.st[w.match[x]]
		w.flower[b] = append(w.flower[b], y)
		w.qPush(y)
		x = w.st[w.pa[y]]
	}
	// reverse flower[b][1:]
	rev := w.flower[b][1:]
	for i, j := 0, len(rev)-1; i < j; i, j = i+1, j-1 {
		rev[i], rev[j] = rev[j], rev[i]
	}
	for x := v; x != lca; {
		w.flower[b] = append(w.flower[b], x)
		y := w.st[w.match[x]]
		w.flower[b] = append(w.flower[b], y)
		w.qPush(y)
		x = w.st[w.pa[y]]
	}
	w.setSt(b, b)
	for x := 1; x <= w.nx; x++ {
		w.g[b][x].w = 0
		w.g[x][b].w = 0
	}
	for x := 1; x <= w.n; x++ {
		w.flowerFrom[b][x] = 0
	}
	for _, xs := range w.flower[b] {
		for x := 1; x <= w.nx; x++ {
			if w.g[b][x].w == 0 || w.eDelta(w.g[xs][x]) < w.eDelta(w.g[b][x]) {
				w.g[b][x] = w.g[xs][x]
				w.g[x][b] = w.g[x][xs]
			}
		}
		for x := 1; x <= w.n; x++ {
			if w.flowerFrom[xs][x] != 0 {
				w.flowerFrom[b][x] = xs
			}
		}
	}
	w.setSlack(b)
}

func (w *wb) expandBlossom(b int) {
	for _, p := range w.flower[b] {
		w.setSt(p, p)
	}
	xr := w.flowerFrom[b][w.g[b][w.pa[b]].u]
	pr := w.getPr(b, xr)
	for i := 0; i < pr; i += 2 {
		xs := w.flower[b][i]
		xns := w.flower[b][i+1]
		w.pa[xs] = w.g[xns][xs].u
		w.s[xs] = 1
		w.s[xns] = 0
		w.slack[xs] = 0
		w.setSlack(xns)
		w.qPush(xns)
	}
	w.s[xr] = 1
	w.pa[xr] = w.pa[b]
	for i := pr + 1; i < len(w.flower[b]); i++ {
		xs := w.flower[b][i]
		w.s[xs] = -1
		w.setSlack(xs)
	}
	w.st[b] = 0
}

func (w *wb) onFoundEdge(e wbEdge) bool {
	u := w.st[e.u]
	v := w.st[e.v]
	switch w.s[v] {
	case -1:
		w.pa[v] = e.u
		w.s[v] = 1
		nu := w.st[w.match[v]]
		w.slack[v] = 0
		w.slack[nu] = 0
		w.s[nu] = 0
		w.qPush(nu)
	case 0:
		lca := w.getLCA(u, v)
		if lca == 0 {
			w.augment(u, v)
			w.augment(v, u)
			return true
		}
		w.addBlossom(u, lca, v)
	}
	return false
}

func (w *wb) matching() bool {
	for x := 1; x <= w.nx; x++ {
		w.s[x] = -1
		w.slack[x] = 0
	}
	w.q = w.q[:0]
	for x := 1; x <= w.nx; x++ {
		if w.st[x] == x && w.match[x] == 0 {
			w.pa[x] = 0
			w.s[x] = 0
			w.qPush(x)
		}
	}
	if len(w.q) == 0 {
		return false
	}
	for {
		for len(w.q) > 0 {
			u := w.q[0]
			w.q = w.q[1:]
			if w.s[w.st[u]] == 1 {
				continue
			}
			for v := 1; v <= w.n; v++ {
				if w.g[u][v].w > 0 && w.st[u] != w.st[v] {
					if w.eDelta(w.g[u][v]) == 0 {
						if w.onFoundEdge(w.g[u][v]) {
							return true
						}
					} else {
						w.updateSlack(u, w.st[v])
					}
				}
			}
		}
		d := wbInf
		for b := w.n + 1; b <= w.nx; b++ {
			if w.st[b] == b && w.s[b] == 1 {
				if w.lab[b]/2 < d {
					d = w.lab[b] / 2
				}
			}
		}
		for x := 1; x <= w.nx; x++ {
			if w.st[x] == x && w.slack[x] != 0 {
				switch w.s[x] {
				case -1:
					if dd := w.eDelta(w.g[w.slack[x]][x]); dd < d {
						d = dd
					}
				case 0:
					if dd := w.eDelta(w.g[w.slack[x]][x]) / 2; dd < d {
						d = dd
					}
				}
			}
		}
		for u := 1; u <= w.n; u++ {
			switch w.s[w.st[u]] {
			case 0:
				if w.lab[u] <= d {
					return false // dual hit zero: no augmenting path left
				}
				w.lab[u] -= d
			case 1:
				w.lab[u] += d
			}
		}
		for b := w.n + 1; b <= w.nx; b++ {
			if w.st[b] == b {
				switch w.s[b] {
				case 0:
					w.lab[b] += d * 2
				case 1:
					w.lab[b] -= d * 2
				}
			}
		}
		w.q = w.q[:0]
		for x := 1; x <= w.nx; x++ {
			if w.st[x] == x && w.slack[x] != 0 && w.st[w.slack[x]] != x &&
				w.eDelta(w.g[w.slack[x]][x]) == 0 {
				if w.onFoundEdge(w.g[w.slack[x]][x]) {
					return true
				}
			}
		}
		for b := w.n + 1; b <= w.nx; b++ {
			if w.st[b] == b && w.s[b] == 1 && w.lab[b] == 0 {
				w.expandBlossom(b)
			}
		}
	}
}

func (w *wb) solve() {
	w.nx = w.n
	for u := 0; u <= w.n; u++ {
		w.st[u] = u
		w.flower[u] = w.flower[u][:0]
	}
	var wMax int64
	for u := 1; u <= w.n; u++ {
		for v := 1; v <= w.n; v++ {
			if u == v {
				w.flowerFrom[u][v] = u
			} else {
				w.flowerFrom[u][v] = 0
			}
			if w.g[u][v].w > wMax {
				wMax = w.g[u][v].w
			}
		}
	}
	for u := 1; u <= w.n; u++ {
		w.lab[u] = wMax / 2 // weights are doubled, so this is max weight
	}
	for w.matching() {
	}
}

// ExactMWM dispatches to the best exact maximum-weight-matching solver for
// the instance: branch and bound for tiny edge counts (fast, allocation
// free), weighted blossom up to WeightedBlossomLimit vertices, and panics
// beyond (callers fall back to ScalingMWM).
func ExactMWM(g *graph.Graph) []int {
	if g.M() <= MWMExactLimit {
		return MaximumWeightMatching(g)
	}
	return WeightedBlossom(g)
}
