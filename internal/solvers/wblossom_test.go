package solvers

import (
	"math/rand"
	"testing"
	"testing/quick"

	"expandergap/internal/graph"
)

func TestWeightedBlossomKnown(t *testing.T) {
	// Path 1-10-1: middle edge only.
	b := graph.NewBuilder(4)
	b.AddWeightedEdge(0, 1, 1)
	b.AddWeightedEdge(1, 2, 10)
	b.AddWeightedEdge(2, 3, 1)
	g := b.Graph()
	mate := WeightedBlossom(g)
	if !IsMatching(g, mate) {
		t.Fatal("not a matching")
	}
	if w := MatchingWeight(g, mate); w != 10 {
		t.Errorf("weight = %d, want 10", w)
	}

	// Square 5-3-5-3: opposite 5s win (10 > 5+3).
	b2 := graph.NewBuilder(4)
	b2.AddWeightedEdge(0, 1, 5)
	b2.AddWeightedEdge(1, 2, 3)
	b2.AddWeightedEdge(2, 3, 5)
	b2.AddWeightedEdge(3, 0, 3)
	g2 := b2.Graph()
	if w := MatchingWeight(g2, WeightedBlossom(g2)); w != 10 {
		t.Errorf("square weight = %d, want 10", w)
	}

	// Odd cycle with one heavy edge: blossom handling.
	b3 := graph.NewBuilder(5)
	b3.AddWeightedEdge(0, 1, 9)
	b3.AddWeightedEdge(1, 2, 8)
	b3.AddWeightedEdge(2, 3, 7)
	b3.AddWeightedEdge(3, 4, 8)
	b3.AddWeightedEdge(4, 0, 1)
	g3 := b3.Graph()
	// Best: {0-1, 3-4} = 17.
	if w := MatchingWeight(g3, WeightedBlossom(g3)); w != 17 {
		t.Errorf("C5 weight = %d, want 17", w)
	}
}

func TestWeightedBlossomUnitWeightsEqualsBlossom(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		g := graph.ErdosRenyi(12, 0.3, rng)
		mcm := MatchingSize(MaximumMatching(g))
		wmate := WeightedBlossom(g)
		if !IsMatching(g, wmate) {
			t.Fatal("invalid matching")
		}
		if MatchingSize(wmate) != mcm {
			t.Errorf("trial %d: unit-weight blossom size %d != MCM %d",
				trial, MatchingSize(wmate), mcm)
		}
	}
}

// The load-bearing test: cross-validate against the exact branch-and-bound
// on hundreds of random weighted graphs (dense and sparse, small weights to
// force ties and blossoms).
func TestQuickWeightedBlossomVsBranchAndBound(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(8)
		p := 0.25 + rng.Float64()*0.5
		base := graph.ErdosRenyi(n, p, rng)
		if base.M() == 0 || base.M() > MWMExactLimit {
			return true
		}
		maxW := int64(1 + rng.Intn(12)) // small weights force ties
		g := graph.WithRandomWeights(base, maxW, rng)
		want := MatchingWeight(g, MaximumWeightMatching(g))
		mate := WeightedBlossom(g)
		if !IsMatching(g, mate) {
			return false
		}
		return MatchingWeight(g, mate) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestWeightedBlossomMediumPlanar(t *testing.T) {
	// Beyond the B&B edge limit: verify against greedy lower bound and
	// fractional-relaxation-free sanity (weight at least greedy, at most
	// sum of top n/2 edge weights).
	rng := rand.New(rand.NewSource(7))
	g := graph.WithRandomWeights(graph.RandomMaximalPlanar(60, rng), 100, rng)
	mate := WeightedBlossom(g)
	if !IsMatching(g, mate) {
		t.Fatal("invalid matching")
	}
	got := MatchingWeight(g, mate)
	greedy := MatchingWeight(g, GreedyMatching(g))
	if got < greedy {
		t.Errorf("blossom %d below greedy %d", got, greedy)
	}
}

func TestWeightedBlossomEmptyAndLimits(t *testing.T) {
	if mate := WeightedBlossom(graph.NewBuilder(0).Graph()); mate != nil {
		t.Error("empty graph should give nil")
	}
	mate := WeightedBlossom(graph.NewBuilder(3).Graph())
	for _, m := range mate {
		if m != -1 {
			t.Error("edgeless graph should be unmatched")
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic above limit")
		}
	}()
	WeightedBlossom(graph.Path(WeightedBlossomLimit + 1))
}

func TestScalingMWMAgainstBlossomOptimum(t *testing.T) {
	// Validate the scaling approximation's quality against the true optimum
	// on medium planar instances (which the blossom solver now provides).
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 5; trial++ {
		g := graph.WithRandomWeights(graph.RandomMaximalPlanar(50, rng), 200, rng)
		opt := MatchingWeight(g, WeightedBlossom(g))
		scaled := MatchingWeight(g, ScalingMWM(g, 0.1))
		if 2*scaled < opt {
			t.Errorf("trial %d: scaling %d below OPT/2 (%d)", trial, scaled, opt)
		}
	}
}

func TestExactMWMDispatch(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	small := graph.WithRandomWeights(graph.Cycle(6), 10, rng)
	mate := ExactMWM(small)
	if !IsMatching(small, mate) {
		t.Fatal("dispatch small failed")
	}
	big := graph.WithRandomWeights(graph.RandomMaximalPlanar(40, rng), 10, rng)
	if big.M() <= MWMExactLimit {
		t.Fatalf("test instance too small: %d edges", big.M())
	}
	mate2 := ExactMWM(big)
	if !IsMatching(big, mate2) {
		t.Fatal("dispatch big failed")
	}
}
